package hpfexec

import (
	"fmt"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func prepLaplace(t *testing.T, nx, ny, np int, layout string) *Prepared {
	t.Helper()
	A := sparse.Laplace2D(nx, ny)
	plan, err := PlanForLayout(layout, np, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
	pr, err := Prepare(m, plan, A)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestWarmBatchBitIdentical is the registry's core correctness claim:
// a second SolveBatch on the same Prepared — which reuses the cached
// per-rank operators and skips the inspector exchange — must return
// bit-identical solutions with zero modeled setup time.
func TestWarmBatchBitIdentical(t *testing.T) {
	for _, layout := range []string{"csr", "csc-merge", "balanced"} {
		t.Run(layout, func(t *testing.T) {
			pr := prepLaplace(t, 12, 12, 4, layout)
			n := pr.N()
			rhs := [][]float64{sparse.RandomVector(n, 7), sparse.RandomVector(n, 8)}
			opts := []core.Options{{}}

			cold, err := pr.SolveBatch(rhs, opts)
			if err != nil {
				t.Fatal(err)
			}
			// CSR layouts pay a modeled setup (inspector exchange +
			// executor-selection collective); CSC setup is host-side
			// conversion, so its modeled span is legitimately zero.
			if layout != "csc-merge" && cold.SetupModelTime <= 0 {
				t.Fatalf("cold setup model time %g, want > 0", cold.SetupModelTime)
			}
			if !pr.Warm() {
				t.Fatal("Prepared not warm after first batch")
			}

			warm, err := pr.SolveBatch(rhs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if warm.SetupModelTime != 0 {
				t.Fatalf("warm setup model time %g, want exactly 0", warm.SetupModelTime)
			}
			for k := range rhs {
				cx, wx := cold.Results[k].X, warm.Results[k].X
				if len(cx) != len(wx) {
					t.Fatalf("rhs %d: length %d vs %d", k, len(cx), len(wx))
				}
				for i := range cx {
					if cx[i] != wx[i] {
						t.Fatalf("rhs %d: x[%d] differs: %v vs %v", k, i, cx[i], wx[i])
					}
				}
				if cold.Results[k].Stats.Iterations != warm.Results[k].Stats.Iterations {
					t.Fatalf("rhs %d: iteration counts differ", k)
				}
			}
			if cold.Results[0].Strategy != warm.Results[0].Strategy {
				t.Fatalf("strategy drifted warm: %v vs %v",
					cold.Results[0].Strategy, warm.Results[0].Strategy)
			}
		})
	}
}

func TestRegistryHitMissEvict(t *testing.T) {
	pr := prepLaplace(t, 8, 8, 2, "csr")
	unit := pr.MemoryBytes()
	reg := NewRegistry(2*unit + unit/2) // room for two entries

	if _, ok := reg.Get("a"); ok {
		t.Fatal("hit on empty registry")
	}
	if _, ok := reg.Put("a", pr); !ok {
		t.Fatal("put a failed")
	}
	if _, ok := reg.Get("a"); !ok {
		t.Fatal("miss after put")
	}
	prB := prepLaplace(t, 8, 8, 2, "csr")
	if _, ok := reg.Put("b", prB); !ok {
		t.Fatal("put b failed")
	}
	// Refresh a, then insert c: b must be the LRU victim.
	reg.Get("a")
	prC := prepLaplace(t, 8, 8, 2, "csr")
	if _, ok := reg.Put("c", prC); !ok {
		t.Fatal("put c failed")
	}
	if _, ok := reg.Get("b"); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := reg.Get("a"); !ok {
		t.Fatal("recently used a evicted")
	}
	st := reg.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Fatalf("entries %d, want 2", st.Entries)
	}
	if st.Bytes != 2*unit {
		t.Fatalf("bytes %d, want %d", st.Bytes, 2*unit)
	}
	// hits: a, a, a; misses: a(first), b, plus none else.
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("hits/misses %d/%d, want 3/2", st.Hits, st.Misses)
	}
}

func TestRegistryOversizedPlanNotCached(t *testing.T) {
	pr := prepLaplace(t, 8, 8, 2, "csr")
	reg := NewRegistry(pr.MemoryBytes() - 1)
	if _, ok := reg.Put("big", pr); ok {
		t.Fatal("oversized plan was cached")
	}
	if st := reg.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("registry not empty after oversized put: %+v", st)
	}
}

func TestRegistryDuplicatePutKeepsFirst(t *testing.T) {
	reg := NewRegistry(0)
	pr1 := prepLaplace(t, 8, 8, 2, "csr")
	pr2 := prepLaplace(t, 8, 8, 2, "csr")
	e1, _ := reg.Put("k", pr1)
	e2, _ := reg.Put("k", pr2)
	if e1 != e2 {
		t.Fatal("duplicate put created a second entry")
	}
	if e2.Prepared() != pr1 {
		t.Fatal("duplicate put replaced the cached plan")
	}
	if st := reg.Stats(); st.Entries != 1 {
		t.Fatalf("entries %d, want 1", st.Entries)
	}
}

// TestRegistryConcurrentSameKey: many goroutines racing Get/Put on one
// key must serialize batch runs through the entry lock and never lose
// the bit-identity of a solo solve. (Run under -race in make check.)
func TestRegistryConcurrentSameKey(t *testing.T) {
	reg := NewRegistry(0)
	A := sparse.Laplace2D(10, 10)
	n := A.NRows
	b := sparse.RandomVector(n, 3)
	plan, err := PlanForLayout("csr", 2, n, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := SolveCG(comm.NewMachine(2, topology.Hypercube{}, topology.DefaultCostParams()), plan, A, b, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			e, ok := reg.Get("k")
			if !ok {
				m := comm.NewMachine(2, topology.Hypercube{}, topology.DefaultCostParams())
				pr, err := Prepare(m, plan, A)
				if err != nil {
					errc <- err
					return
				}
				e, _ = reg.Put("k", pr)
			}
			e.Lock()
			out, err := e.Prepared().SolveBatch([][]float64{b}, []core.Options{{}})
			e.Unlock()
			if err != nil {
				errc <- err
				return
			}
			for i := range ref.X {
				if out.Results[0].X[i] != ref.X[i] {
					errc <- fmt.Errorf("x[%d] differs under concurrency", i)
					return
				}
			}
			errc <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
