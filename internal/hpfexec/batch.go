// Batch execution: the solver-as-a-service entry points. A service
// that fields many solve requests against the same matrix should not
// re-run the directive binding, the partitioner, the CSC conversion,
// and the inspector's ghost-schedule exchange for every right-hand
// side — the paper's §2 framing (one partitioned/inspected matrix,
// many solves) and the enlarged-CG line both amortize exactly that
// setup. Prepare captures everything RHS-independent once; SolveBatch
// then solves a whole slice of right-hand sides in a single SPMD run,
// building the operator (and exchanging the inspector schedule) once
// and reusing one pooled core.Workspace per processor, so every solve
// after the first is allocation-free on the hot path.
//
// Bit-identity: each RHS's solution is bit-identical to what a solo
// SolveCG with the same spec would produce — the workspace hands back
// zeroed vectors exactly like fresh allocation, the operator's pooled
// gather buffers are PR 2's bit-stable reuse, and the solver sequence
// per RHS is unchanged. TestBatchBitIdenticalToSolo holds this.
package hpfexec

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/hpf"
	"hpfcg/internal/mfree"
	"hpfcg/internal/mg"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// Layout names the canonical directive programs a service request can
// select without shipping directive text. They mirror cmd/hpfrun's
// -demo listings: the paper's Scenario 1 (row-block CSR), Scenario 2
// in its HPF-1 serialized and PRIVATE/MERGE(+) parallel executions,
// and the §5.2.2 balanced-partitioner redistribution.
var layoutPrograms = map[string]string{
	"csr": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
`,
	"csc-serial": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
`,
	"csc-merge": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
!EXT$ ITERATION j ON PROCESSOR(j*np/n), PRIVATE(q(n)) WITH MERGE(+)
`,
	"balanced": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
!EXT$ INDIVISABLE a(ATOM:i) :: row(i:i+1)
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
`,
}

// Layouts lists the canonical layout names PlanForLayout accepts.
func Layouts() []string { return []string{"csr", "csc-serial", "csc-merge", "balanced"} }

// PlanForLayout parses and binds the canonical directive program for
// the named layout against an n×n matrix with nz stored entries on np
// processors.
func PlanForLayout(layout string, np, n, nz int) (*hpf.Plan, error) {
	src, ok := layoutPrograms[layout]
	if !ok {
		return nil, fmt.Errorf("hpfexec: unknown layout %q (have %v)", layout, Layouts())
	}
	prog, err := hpf.Parse(src)
	if err != nil {
		return nil, err
	}
	sizes := map[string]int{
		"p": n, "q": n, "r": n, "x": n, "b": n,
		"row": n + 1, "col": nz, "a": nz,
		"colptr": n + 1, "rowidx": nz,
	}
	if layout == "csc-serial" || layout == "csc-merge" {
		sizes["row"] = nz // the CSC trio's row-index array
	}
	return hpf.Bind(prog, np, sizes, map[string]int{"n": n, "nz": nz})
}

// Prepared is a reusable prepared-matrix handle: the RHS-independent
// part of a directive-driven solve (plan validation, execution
// strategy, partitioner redistribution, CSC conversion), bound to one
// machine. One Prepared serves any number of SolveBatch calls; after
// the first, the per-rank operators (including the ghost executor's
// inspector schedule) are cached and rebound into each new run, so a
// warm SolveBatch pays zero modeled setup — the property the plan
// registry (Registry) exposes to the serving tier.
//
// A Prepared is not safe for concurrent SolveBatch calls: it owns its
// machine and its cached operators. Registry entries serialize access.
type Prepared struct {
	m        *comm.Machine
	A        *sparse.CSR
	pc       *preparedCG
	strategy Strategy

	// ops[r] is rank r's operator, cached after the first batch run;
	// warm gates the reuse. Each rank writes only its own slot inside
	// the SPMD region, and warm flips only between runs.
	ops  []spmv.Operator
	warm bool

	// MG handles (PrepareMG) carry a stencil spec instead of a matrix:
	// A and pc are nil, and mgProbs[r] caches rank r's level hierarchy
	// after the first SolveHPCGBatch the way ops caches operators.
	mgSpec   *mg.Spec
	mgLevels int
	mgProbs  []*mg.Problem

	// Matrix-free handles (PrepareStencil) carry only an mfree spec:
	// no matrix, no hierarchy, and — uniquely — no setup cost at all,
	// cold or warm, because the geometric halo schedule is computed
	// locally from brick coordinates. mfOps[r] caches rank r's operator
	// after the first SolveStencilBatch.
	mfSpec *mfree.Spec
	mfOps  []*mfree.Operator

	// pipelined selects core.CGPipelined for stencil handles
	// (PrepareStencilPipelined); matrix handles carry the flag in pc.
	pipelined bool
}

// Prepare validates the plan against the matrix and fixes the
// execution strategy, returning the handle batch solves run from.
func Prepare(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR) (*Prepared, error) {
	pc, err := analyzeCG(m, plan, A)
	if err != nil {
		return nil, err
	}
	return &Prepared{m: m, A: A, pc: pc, strategy: pc.strategy, ops: make([]spmv.Operator, m.NP())}, nil
}

// Warm reports whether the handle has run at least one batch and so
// holds cached per-rank operators (the next run skips setup).
func (pr *Prepared) Warm() bool { return pr.warm }

// MemoryBytes estimates the resident size of the cached plan: the CSR
// arrays, the CSC copy when the layout declared one, and a per-row
// overhead for operator slices and ghost schedules. The registry's
// byte budget accounts in these units; the estimate is deliberately
// simple — it is a cache-pressure signal, not an allocator.
func (pr *Prepared) MemoryBytes() int64 {
	const intB, floatB = 8, 8
	if pr.mfSpec != nil {
		// Matrix-free handles hold two ghost planes per rank and a
		// descriptor; the estimate is analytic in the spec.
		return pr.mfSpec.ModelBytes(pr.m.NP())
	}
	if pr.mgSpec != nil {
		// MG handles never materialize a matrix; the hierarchy's size
		// is analytic in the spec.
		return pr.mgSpec.ModelBytes(pr.m.NP())
	}
	sz := int64(len(pr.A.RowPtr)+len(pr.A.Col))*intB + int64(len(pr.A.Val))*floatB
	if pr.pc.csc != nil {
		sz += int64(len(pr.pc.csc.ColPtr)+len(pr.pc.csc.Row))*intB + int64(len(pr.pc.csc.Val))*floatB
	}
	// Operator-side copies (row remaps, ghost buffers) are at most
	// another matrix-sized working set per machine.
	sz *= 2
	sz += int64(pr.A.NRows) * 2 * floatB
	return sz
}

// Strategy returns the execution strategy the directives selected.
// For the CSR layout the executor choice (ghost vs broadcast) is made
// collectively inside the first run; until then Mode reads "local".
func (pr *Prepared) Strategy() Strategy { return pr.strategy }

// N returns the system size.
func (pr *Prepared) N() int {
	if pr.mfSpec != nil {
		return pr.mfSpec.N()
	}
	if pr.mgSpec != nil {
		fine, err := pr.mgSpec.Fine(pr.m.NP())
		if err != nil {
			return 0
		}
		return fine.N()
	}
	return pr.A.NRows
}

// BatchResult is a completed multi-RHS batch solve.
type BatchResult struct {
	// Results holds one Result per right-hand side, in input order.
	// Each Result.Run is the shared batch run's statistics (the run is
	// one SPMD program; per-RHS modeled spans are in SolveModelTime).
	Results []*Result
	// Run is the whole batch's machine statistics.
	Run comm.RunStats
	// SetupModelTime is the modeled time (max over ranks) spent before
	// the first solve: operator construction, the inspector's ghost
	// schedule exchange, and the executor-selection collective. This is
	// the cost batching amortizes across len(Results) solves.
	SetupModelTime float64
	// SolveModelTime[k] is the modeled span of solve k alone (max rank
	// clock after solve k minus max rank clock before it).
	SolveModelTime []float64
}

// SolveCGBatch solves A·x = b_k for every right-hand side in rhs in a
// single SPMD run: the mat-vec operator is built (and its inspector
// schedule exchanged) once, then each RHS is solved in order reusing
// one pooled core.Workspace per processor. opts[k] configures solve k;
// a single-element opts slice applies to every RHS.
func SolveCGBatch(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, rhs [][]float64, opts []core.Options) (*BatchResult, error) {
	pr, err := Prepare(m, plan, A)
	if err != nil {
		return nil, err
	}
	return pr.SolveBatch(rhs, opts)
}

// SolveBatch runs one batch of right-hand sides (see SolveCGBatch).
func (pr *Prepared) SolveBatch(rhs [][]float64, opts []core.Options) (*BatchResult, error) {
	if pr.mfSpec != nil {
		return pr.SolveStencilBatch(rhs, opts)
	}
	if pr.mgSpec != nil {
		return pr.SolveHPCGBatch(rhs, opts)
	}
	if len(rhs) == 0 {
		return nil, fmt.Errorf("hpfexec: empty batch")
	}
	n := pr.A.NRows
	for k, b := range rhs {
		if len(b) != n {
			return nil, fmt.Errorf("hpfexec: rhs %d length %d != %d", k, len(b), n)
		}
	}
	if len(opts) != 1 && len(opts) != len(rhs) {
		return nil, fmt.Errorf("hpfexec: got %d option sets for %d right-hand sides", len(opts), len(rhs))
	}
	optFor := func(k int) core.Options {
		if len(opts) == 1 {
			return opts[0]
		}
		return opts[k]
	}

	pc := pr.pc
	np := pr.m.NP()
	out := &BatchResult{
		Results:        make([]*Result, len(rhs)),
		SolveModelTime: make([]float64, len(rhs)),
	}
	// marks[r][0] is rank r's clock after setup; marks[r][k+1] after
	// solve k. Each rank writes only its own row, so no locking.
	marks := make([][]float64, np)
	for r := range marks {
		marks[r] = make([]float64, len(rhs)+1)
	}
	stats := make([]core.Stats, len(rhs))
	xs := make([][]float64, len(rhs))
	var solveErr error
	var ghostChosen bool

	warm := pr.warm
	run, err := pr.m.RunChecked(func(p *comm.Proc) {
		var op spmv.Operator
		if warm {
			// Warm start: reuse the rank's cached operator, rebound to
			// this run's Proc. No partitioning, no inspector exchange,
			// no executor-selection collective — modeled setup is zero.
			op = pr.ops[p.Rank()]
			if rb, ok := op.(spmv.Rebindable); ok {
				rb.Rebind(p)
			}
		} else {
			var ghost bool
			op, ghost = pc.operator(p)
			pr.ops[p.Rank()] = op
			if ghost && p.Rank() == 0 {
				ghostChosen = true
			}
		}
		bv := darray.New(p, pc.d)
		xv := darray.New(p, pc.d)
		work := core.NewWorkspace()
		marks[p.Rank()][0] = p.Clock()
		for k := range rhs {
			b := rhs[k]
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv.Fill(0)
			opt := optFor(k)
			opt.Work = work
			var st core.Stats
			var err error
			switch {
			case pc.pipelined:
				st, err = core.CGPipelined(p, op, bv, xv, opt, true)
			case pc.sstep >= 2:
				st, err = core.CGSStep(p, op, bv, xv, opt, pc.sstep)
			default:
				st, err = core.CG(p, op, bv, xv, opt)
			}
			if err != nil {
				if p.Rank() == 0 {
					solveErr = fmt.Errorf("hpfexec: batch rhs %d: %w", k, err)
				}
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				xs[k] = full
				stats[k] = st
			}
			marks[p.Rank()][k+1] = p.Clock()
		}
	})
	if err != nil {
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}

	strategy := pr.strategy
	if !warm {
		strategy = pc.strategy
		if pc.format == "csr" {
			if ghostChosen {
				strategy.Mode = "local(ghost)"
			} else {
				strategy.Mode = "local(broadcast)"
			}
		}
		pr.strategy = strategy
		pr.warm = true
	}

	// Fold the per-rank clock marks into per-stage modeled spans.
	maxAt := func(j int) float64 {
		m := 0.0
		for r := 0; r < np; r++ {
			if marks[r][j] > m {
				m = marks[r][j]
			}
		}
		return m
	}
	out.SetupModelTime = maxAt(0)
	prev := out.SetupModelTime
	for k := range rhs {
		end := maxAt(k + 1)
		out.SolveModelTime[k] = end - prev
		prev = end
	}
	out.Run = run
	for k := range rhs {
		out.Results[k] = &Result{X: xs[k], Stats: stats[k], Run: run, Strategy: strategy}
	}
	return out, nil
}
