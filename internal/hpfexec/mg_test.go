package hpfexec

import (
	"testing"

	"hpfcg/internal/core"
	"hpfcg/internal/mg"
	"hpfcg/internal/sparse"
)

func mgSpec() mg.Spec { return mg.Spec{Nx: 4, Ny: 4, Nz: 4, Levels: 3} }

// TestSolveHPCGConverges: the end-to-end MG handle solves the stencil
// system and reports the V-cycle strategy.
func TestSolveHPCGConverges(t *testing.T) {
	m := machine(4)
	pr, err := PrepareMG(m, mgSpec())
	if err != nil {
		t.Fatal(err)
	}
	n := pr.N()
	if want := 4 * 4 * 4 * 4; n != want {
		t.Fatalf("N = %d, want %d", n, want)
	}
	b := sparse.RandomVector(n, 42)
	out, err := pr.SolveHPCGBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	if !res.Stats.Converged {
		t.Fatalf("no convergence: %+v", res.Stats)
	}
	if res.Strategy.Scenario != "hpcg 27-pt stencil" {
		t.Errorf("scenario = %q", res.Strategy.Scenario)
	}
	if pr.MGLevels() != 3 {
		t.Errorf("levels = %d, want 3", pr.MGLevels())
	}
	if out.Run.TotalFlops <= 0 {
		t.Errorf("no flops charged: %d", out.Run.TotalFlops)
	}
}

// TestHPCGWarmBatchZeroSetup: the PR 5/6 registry semantics — a warm
// handle rebinds the cached hierarchy, so the second batch's modeled
// setup is exactly zero and its answers are bit-identical to the
// cold batch's.
func TestHPCGWarmBatchZeroSetup(t *testing.T) {
	m := machine(4)
	pr, err := PrepareMG(m, mgSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.RandomVector(pr.N(), 7)
	opts := []core.Options{{Tol: 1e-10}}

	cold, err := pr.SolveHPCGBatch([][]float64{b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SetupModelTime <= 0 {
		t.Errorf("cold setup time %v, want > 0", cold.SetupModelTime)
	}
	if !pr.Warm() {
		t.Fatal("handle not warm after first batch")
	}
	warm, err := pr.SolveHPCGBatch([][]float64{b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SetupModelTime != 0 {
		t.Errorf("warm setup time %v, want exactly 0", warm.SetupModelTime)
	}
	x0, x1 := cold.Results[0].X, warm.Results[0].X
	for i := range x0 {
		if x0[i] != x1[i] {
			t.Fatalf("warm answer differs at %d: %v vs %v", i, x0[i], x1[i])
		}
	}
}

// TestHPCGBatchMultiRHS: a batch of right-hand sides shares one SPMD
// run and each solution matches its own solo solve bit-for-bit.
func TestHPCGBatchMultiRHS(t *testing.T) {
	spec := mgSpec()
	solo := func(seed int64) []float64 {
		m := machine(2)
		pr, err := PrepareMG(m, spec)
		if err != nil {
			t.Fatal(err)
		}
		b := sparse.RandomVector(pr.N(), seed)
		out, err := pr.SolveHPCGBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
		if err != nil {
			t.Fatal(err)
		}
		return out.Results[0].X
	}
	m := machine(2)
	pr, err := PrepareMG(m, spec)
	if err != nil {
		t.Fatal(err)
	}
	rhs := [][]float64{
		sparse.RandomVector(pr.N(), 1),
		sparse.RandomVector(pr.N(), 2),
		sparse.RandomVector(pr.N(), 3),
	}
	out, err := pr.SolveHPCGBatch(rhs, []core.Options{{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	for k, seed := range []int64{1, 2, 3} {
		want := solo(seed)
		got := out.Results[k].X
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rhs %d: x[%d] = %v, solo %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestPrepareMGRejectsBadSpec: admission-time validation, not a
// worker panic.
func TestPrepareMGRejectsBadSpec(t *testing.T) {
	if _, err := PrepareMG(machine(2), mg.Spec{Nx: 0, Ny: 4, Nz: 4}); err == nil {
		t.Error("accepted zero dimension")
	}
	if _, err := PrepareMG(machine(2), mg.Spec{Nx: 4, Ny: 4, Nz: 4, Levels: mg.MaxLevels + 1}); err == nil {
		t.Error("accepted absurd level count")
	}
}

// TestMGHandleMemoryBytes: registry sizing works without a matrix.
func TestMGHandleMemoryBytes(t *testing.T) {
	pr, err := PrepareMG(machine(2), mgSpec())
	if err != nil {
		t.Fatal(err)
	}
	if pr.MemoryBytes() <= 0 {
		t.Errorf("MemoryBytes = %d", pr.MemoryBytes())
	}
	if pr.MG() == nil {
		t.Error("MG() nil on an MG handle")
	}
}

// TestSolveBatchRoutesMGHandles: the generic batch entry point
// dispatches MG handles to the HPCG path, so registry consumers need
// no type switch.
func TestSolveBatchRoutesMGHandles(t *testing.T) {
	pr, err := PrepareMG(machine(2), mgSpec())
	if err != nil {
		t.Fatal(err)
	}
	b := sparse.RandomVector(pr.N(), 9)
	out, err := pr.SolveBatch([][]float64{b}, []core.Options{{Tol: 1e-8}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Results[0].Stats.Converged {
		t.Error("no convergence through SolveBatch routing")
	}
}
