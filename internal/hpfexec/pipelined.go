// The pipelined execution path: overlap-based CG (core.CGPipelined)
// under a directive plan, and its price in the paper's §4 cost model.
//
// Where the s-step path amortizes the allreduce latency over s
// iterations, the pipelined path hides it: one two-word nonblocking
// allreduce per iteration runs concurrently with the iteration's
// mat-vec, so the modeled round cost is max(reduction, mat-vec)
// instead of their sum (comm.IallreduceScalars). ModelPipelined prices
// exactly that overlap with the same PowersStats flop counts the
// s-step selector uses, and ChooseVariant places plain, fused, s-step
// and pipelined CG on one frontier — the map experiment E26 charts.
package hpfexec

import (
	"fmt"
	"math"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/hpf"
	"hpfcg/internal/mfree"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// PipelinedModel is the modeled per-iteration cost of pipelined CG on
// a concrete machine/matrix/distribution triple.
type PipelinedModel struct {
	// TimePerIter is the modeled makespan of one pipelined iteration:
	// max(ReduceTime, OverlapWindow) plus the vector-update flops
	// outside the window.
	TimePerIter float64
	// RoundsPerIter is always 1 — but the round hides.
	RoundsPerIter float64
	// ReduceTime is the blocking cost of the two-word allreduce the
	// iteration starts nonblocking.
	ReduceTime float64
	// OverlapWindow is the modeled compute charged while the round is
	// in flight: the q = A·w halo exchange plus matrix sweep.
	OverlapWindow float64
	// HiddenTime = min(ReduceTime, OverlapWindow) — the share of the
	// reduction the overlap absorbs each iteration.
	HiddenTime float64
}

// ModelPipelined prices one pipelined CG iteration for matrix A
// distributed by d over the machine's ranks: a two-word allreduce
// overlapped with the mat-vec (the iteration pays whichever is
// longer), plus the Ghysels–Vanroose recurrence's 16·nloc vector flops
// (two local dots and six axpy-shaped updates) outside the window.
func ModelPipelined(m *comm.Machine, A *sparse.CSR, d dist.Contiguous) PipelinedModel {
	np := m.NP()
	topo, c := m.Topology(), m.Cost()
	nloc := 0
	for r := 0; r < np; r++ {
		if cnt := d.Count(r); cnt > nloc {
			nloc = cnt
		}
	}
	entries, ghosts := spmv.PowersStats(A, d, np, 1)
	red := topology.AllreduceTime(topo, c, np, 2)
	window := haloTime(c, ghosts, 1) + c.TFlop*2*float64(entries)
	return PipelinedModel{
		TimePerIter:   math.Max(red, window) + c.TFlop*16*float64(nloc),
		RoundsPerIter: 1,
		ReduceTime:    red,
		OverlapWindow: window,
		HiddenTime:    math.Min(red, window),
	}
}

// VariantModel is one row of the solver-variant frontier ChooseVariant
// prices: a named CG variant with its modeled per-iteration makespan,
// synchronization rounds, and (for pipelined) the hidden share.
type VariantModel struct {
	// Name is "plain", "fused", "sstep(s=N)" or "pipelined".
	Name string
	// S is the s-step blocking factor for s-step rows (1 for plain,
	// 0 otherwise).
	S int
	// TimePerIter is the modeled makespan of one iteration.
	TimePerIter float64
	// RoundsPerIter is the allreduce rounds per iteration a blocking
	// clock would count (pipelined still starts 1, but hides it).
	RoundsPerIter float64
	// HiddenTime is the modeled reduction time hidden per iteration
	// (nonzero only for pipelined).
	HiddenTime float64
}

// ChooseVariant prices plain, fused, s-step (every candidate factor)
// and pipelined CG on the machine/matrix/distribution triple and
// returns the cheapest variant's name plus the whole frontier. Ties go
// to the earlier, simpler variant (plain before fused before s-step
// before pipelined), so overlap or blocking is never bought for free.
// The frontier is a modeling aid for reporting and E26; the serving
// tier keeps s-step auto-selection (sstep=0) and the explicit
// pipelined knob separate.
func ChooseVariant(m *comm.Machine, A *sparse.CSR, d dist.Contiguous) (string, []VariantModel) {
	np := m.NP()
	topo, c := m.Topology(), m.Cost()
	nloc := 0
	for r := 0; r < np; r++ {
		if cnt := d.Count(r); cnt > nloc {
			nloc = cnt
		}
	}
	entries, ghosts := spmv.PowersStats(A, d, np, 1)

	plain := ModelSStep(m, A, d, 1)
	models := []VariantModel{{
		Name: "plain", S: 1,
		TimePerIter:   plain.TimePerIter,
		RoundsPerIter: plain.RoundsPerIter,
	}}
	// CGFused: one four-word round per iteration, the same mat-vec, and
	// 14·nloc vector flops (four dots batched into the round plus three
	// axpy-shaped updates).
	models = append(models, VariantModel{
		Name: "fused",
		TimePerIter: topology.AllreduceTime(topo, c, np, 4) +
			haloTime(c, ghosts, 1) +
			c.TFlop*(2*float64(entries)+14*float64(nloc)),
		RoundsPerIter: 1,
	})
	for _, s := range SStepCandidates {
		if s <= 1 {
			continue
		}
		mod := ModelSStep(m, A, d, s)
		models = append(models, VariantModel{
			Name: fmt.Sprintf("sstep(s=%d)", s), S: s,
			TimePerIter:   mod.TimePerIter,
			RoundsPerIter: mod.RoundsPerIter,
		})
	}
	pipe := ModelPipelined(m, A, d)
	models = append(models, VariantModel{
		Name:          "pipelined",
		TimePerIter:   pipe.TimePerIter,
		RoundsPerIter: pipe.RoundsPerIter,
		HiddenTime:    pipe.HiddenTime,
	})

	best := models[0]
	for _, mod := range models[1:] {
		if mod.TimePerIter < best.TimePerIter {
			best = mod
		}
	}
	return best.Name, models
}

// resolvePipelined validates the pipelined request against the
// analyzed strategy: the overlap recurrence runs the row-block CSR
// scenario (like s-step) and is mutually exclusive with s-step
// blocking — the two attack the same latency term and do not compose.
func resolvePipelined(pc *preparedCG) error {
	if pc.format != "csr" {
		return fmt.Errorf("hpfexec: pipelined CG needs the row-block CSR scenario, plan declares %s", pc.format)
	}
	if pc.sstep >= 2 {
		return fmt.Errorf("hpfexec: pipelined CG cannot combine with s-step blocking (s=%d)", pc.sstep)
	}
	return nil
}

// PreparePipelined is Prepare with the overlap-based pipelined solver:
// batch solves run core.CGPipelined with its nonblocking round hidden
// behind the mat-vec. Warm registry hits rebind cached operators like
// every other handle, so repeat traffic keeps SetupModelTime exactly 0.
func PreparePipelined(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR) (*Prepared, error) {
	pc, err := analyzeCG(m, plan, A)
	if err != nil {
		return nil, err
	}
	if err := resolvePipelined(pc); err != nil {
		return nil, err
	}
	pc.pipelined = true
	pc.strategy.Pipelined = true
	return &Prepared{m: m, A: A, pc: pc, strategy: pc.strategy, ops: make([]spmv.Operator, m.NP())}, nil
}

// Pipelined reports whether the handle's solves run the overlap-based
// pipelined solver.
func (pr *Prepared) Pipelined() bool {
	return (pr.pc != nil && pr.pc.pipelined) || pr.pipelined
}

// PrepareStencilPipelined is PrepareStencil with the pipelined solver:
// the matrix-free operator application becomes the overlap window.
// Setup stays exactly zero, cold and warm, like every stencil handle.
func PrepareStencilPipelined(m *comm.Machine, spec mfree.Spec) (*Prepared, error) {
	pr, err := PrepareStencil(m, spec)
	if err != nil {
		return nil, err
	}
	pr.pipelined = true
	pr.strategy.Pipelined = true
	return pr, nil
}

// SolveStencilPipelined prepares and solves one matrix-free stencil
// system with the pipelined solver (cmd/hpfrun's -stencil -pipelined).
func SolveStencilPipelined(m *comm.Machine, spec mfree.Spec, b []float64, opt core.Options) (*Result, error) {
	pr, err := PrepareStencilPipelined(m, spec)
	if err != nil {
		return nil, err
	}
	out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{opt})
	if err != nil {
		return nil, err
	}
	return out.Results[0], nil
}

// SolveCGPipelined executes the directive-driven CG with the pipelined
// overlap solver (core.CGPipelined): one nonblocking allreduce per
// iteration, hidden behind the mat-vec on the modeled clock.
func SolveCGPipelined(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options) (*Result, error) {
	fn, finish, err := prepareCGPipelined(m, plan, A, b, opt)
	if err != nil {
		return nil, err
	}
	run, err := m.RunChecked(fn)
	if err != nil {
		return nil, err
	}
	return finish(run)
}

// SolveCGPipelinedTimeout is SolveCGPipelined under the same deadlock
// watchdog as SolveCGTimeout.
func SolveCGPipelinedTimeout(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, d time.Duration) (*Result, error) {
	fn, finish, err := prepareCGPipelined(m, plan, A, b, opt)
	if err != nil {
		return nil, err
	}
	run, err := m.RunTimeout(fn, d)
	if err != nil {
		return nil, err
	}
	return finish(run)
}

// prepareCGPipelined validates the pipelined request and builds the
// SPMD body running core.CGPipelined.
func prepareCGPipelined(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options) (func(p *comm.Proc), func(run comm.RunStats) (*Result, error), error) {
	pc, err := analyzeCG(m, plan, A)
	if err != nil {
		return nil, nil, err
	}
	if err := resolvePipelined(pc); err != nil {
		return nil, nil, err
	}
	pc.pipelined = true
	pc.strategy.Pipelined = true
	return prepareCGFrom(m, pc, b, opt,
		func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector) (core.Stats, error) {
			return core.CGPipelined(p, op, bv, xv, opt, true)
		})
}
