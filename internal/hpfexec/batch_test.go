package hpfexec

import (
	"math"
	"testing"

	"hpfcg/internal/core"
	"hpfcg/internal/sparse"
)

// TestPlanForLayoutMatchesSolo: every canonical layout binds to a plan
// that solves, and the selected strategy matches the layout's intent.
func TestPlanForLayoutStrategies(t *testing.T) {
	const np = 4
	A := sparse.Banded(96, 3)
	b := sparse.RandomVector(96, 7)
	want := map[string]string{
		"csr":        "row-block CSR / local(ghost)",
		"csc-serial": "col-block CSC / serialized",
		"csc-merge":  "col-block CSC / private-merge",
		"balanced":   "row-block CSR / local(ghost) / balanced",
	}
	for _, layout := range Layouts() {
		plan, err := PlanForLayout(layout, np, A.NRows, A.NNZ())
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		res, err := SolveCG(machine(np), plan, A, b, core.Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%s: did not converge: %v", layout, res.Stats)
		}
		if got := res.Strategy.String(); got != want[layout] {
			t.Errorf("%s: strategy %q, want %q", layout, got, want[layout])
		}
	}
}

func TestPlanForLayoutUnknown(t *testing.T) {
	if _, err := PlanForLayout("btree", 4, 16, 64); err == nil {
		t.Fatal("unknown layout accepted")
	}
}

// TestBatchBitIdenticalToSolo is the service's core numerical
// guarantee: each right-hand side solved in a batch yields exactly the
// bits a solo SolveCG with the same spec produces — across layouts,
// including the balanced partitioner path.
func TestBatchBitIdenticalToSolo(t *testing.T) {
	const np, n = 4, 128
	A := sparse.Banded(n, 4)
	opt := core.Options{Tol: 1e-10}
	for _, layout := range Layouts() {
		layout := layout
		t.Run(layout, func(t *testing.T) {
			plan, err := PlanForLayout(layout, np, A.NRows, A.NNZ())
			if err != nil {
				t.Fatal(err)
			}
			rhs := make([][]float64, 6)
			for k := range rhs {
				rhs[k] = sparse.RandomVector(n, int64(100+k))
			}
			batch, err := SolveCGBatch(machine(np), plan, A, rhs, []core.Options{opt})
			if err != nil {
				t.Fatal(err)
			}
			for k, b := range rhs {
				solo, err := SolveCG(machine(np), plan, A, b, opt)
				if err != nil {
					t.Fatalf("solo %d: %v", k, err)
				}
				br := batch.Results[k]
				if !br.Stats.Converged || br.Stats.Iterations != solo.Stats.Iterations {
					t.Fatalf("rhs %d: batch stats %v vs solo %v", k, br.Stats, solo.Stats)
				}
				for i := range solo.X {
					if br.X[i] != solo.X[i] {
						t.Fatalf("rhs %d: x[%d] batch %v != solo %v (bit-identity broken)",
							k, i, br.X[i], solo.X[i])
					}
				}
			}
		})
	}
}

// TestBatchAmortizesSetup: the batch's modeled setup span is paid once,
// and the per-stage spans tile the whole makespan.
func TestBatchAmortizesSetup(t *testing.T) {
	const np, n = 4, 256
	A := sparse.Banded(n, 4)
	plan, err := PlanForLayout("csr", np, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([][]float64, 8)
	for k := range rhs {
		rhs[k] = sparse.RandomVector(n, int64(k+1))
	}
	batch, err := SolveCGBatch(machine(np), plan, A, rhs, []core.Options{{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if batch.SetupModelTime <= 0 {
		t.Fatalf("setup model time %v, want > 0", batch.SetupModelTime)
	}
	sum := batch.SetupModelTime
	for k, s := range batch.SolveModelTime {
		if s <= 0 {
			t.Fatalf("solve %d model span %v, want > 0", k, s)
		}
		sum += s
	}
	if math.Abs(sum-batch.Run.ModelTime) > 1e-9*batch.Run.ModelTime {
		t.Fatalf("stage spans sum %v != makespan %v", sum, batch.Run.ModelTime)
	}
	// One solo run pays the same setup the whole batch paid once.
	solo, err := SolveCGBatch(machine(np), plan, A, rhs[:1], []core.Options{{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	perSoloSetup := solo.SetupModelTime
	perBatchSetup := batch.SetupModelTime / float64(len(rhs))
	if perBatchSetup >= perSoloSetup {
		t.Fatalf("batched setup/solve %v not below solo setup %v", perBatchSetup, perSoloSetup)
	}
}

func TestBatchValidation(t *testing.T) {
	const np = 2
	A := sparse.Laplace1D(16)
	plan, err := PlanForLayout("csr", np, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	m := machine(np)
	if _, err := SolveCGBatch(m, plan, A, nil, []core.Options{{}}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := SolveCGBatch(m, plan, A, [][]float64{make([]float64, 15)}, []core.Options{{}}); err == nil {
		t.Error("short rhs accepted")
	}
	rhs := [][]float64{make([]float64, 16), make([]float64, 16)}
	if _, err := SolveCGBatch(m, plan, A, rhs, make([]core.Options, 3)); err == nil {
		t.Error("mismatched option count accepted")
	}
	bad, err := PlanForLayout("csr", np+1, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prepare(m, bad, A); err == nil {
		t.Error("np-mismatched plan accepted")
	}
}

// TestPreparedReuse: one Prepared handle serves several batches.
func TestPreparedReuse(t *testing.T) {
	const np, n = 2, 64
	A := sparse.Laplace1D(n)
	plan, err := PlanForLayout("csr", np, A.NRows, A.NNZ())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Prepare(machine(np), plan, A)
	if err != nil {
		t.Fatal(err)
	}
	if pr.N() != n {
		t.Fatalf("N = %d, want %d", pr.N(), n)
	}
	var first []float64
	for round := 0; round < 3; round++ {
		out, err := pr.SolveBatch([][]float64{sparse.RandomVector(n, 5)}, []core.Options{{Tol: 1e-10}})
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			first = out.Results[0].X
			continue
		}
		for i := range first {
			if out.Results[0].X[i] != first[i] {
				t.Fatalf("round %d: x[%d] drifted", round, i)
			}
		}
	}
	if s := pr.Strategy().String(); s == "" {
		t.Error("empty strategy")
	}
}
