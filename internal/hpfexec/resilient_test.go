package hpfexec

import (
	"errors"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/fault"
	"hpfcg/internal/sparse"
)

// TestSolveCGResilientSurvivesCrash drives the full product path: an
// hpf plan, a deterministic fault plan that kills one rank mid-solve,
// SolveCG surfacing the typed failure, and SolveCGResilient absorbing
// it via checkpoint/restart with a solution bit-identical to the
// fault-free solve.
func TestSolveCGResilientSurvivesCrash(t *testing.T) {
	A := sparse.Laplace2D(16, 16)
	b := sparse.RandomVector(A.NRows, 7)
	np := 4
	plan := bindPlan(t, csrPlan, A.NRows, A.NNZ(), np)
	opt := core.Options{Tol: 1e-10}

	// Fault-free reference.
	ref, err := SolveCG(machine(np), plan, A, b, opt)
	if err != nil {
		t.Fatal(err)
	}

	fp := fault.Plan{Events: []fault.Event{
		{Kind: fault.Crash, Rank: 2, At: 0.6 * ref.Run.ModelTime, Dst: -1},
	}}

	// Without resilience the crash must come back as a typed error.
	{
		inj, err := fault.NewInjector(fp)
		if err != nil {
			t.Fatal(err)
		}
		m := machine(np)
		m.AttachInjector(inj)
		_, err = SolveCG(m, plan, A, b, opt)
		var pf comm.PeerFailure
		if !errors.As(err, &pf) {
			t.Fatalf("SolveCG under crash: err = %v, want comm.PeerFailure", err)
		}
		if pf.Rank != 2 {
			t.Errorf("blamed rank %d, want 2", pf.Rank)
		}
	}

	inj, err := fault.NewInjector(fp)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(np)
	m.AttachInjector(inj)
	res, err := SolveCGResilient(m, plan, A, b, opt, ResilientOptions{Interval: 4})
	if err != nil {
		t.Fatalf("SolveCGResilient: %v", err)
	}
	if res.Attempts != 2 || len(res.Failures) != 1 {
		t.Errorf("attempts = %d, failures = %d, want 2 and 1", res.Attempts, len(res.Failures))
	}
	if len(res.Failures) == 1 && res.Failures[0].Rank != 2 {
		t.Errorf("recorded failure blames rank %d, want 2", res.Failures[0].Rank)
	}
	if !res.Stats.Converged || res.Stats.Iterations != ref.Stats.Iterations {
		t.Fatalf("resilient solve: converged=%v iters=%d, reference iters=%d",
			res.Stats.Converged, res.Stats.Iterations, ref.Stats.Iterations)
	}
	if res.Stats.Restores != 1 || res.Stats.StartIteration == 0 {
		t.Errorf("final attempt restores=%d start=%d, want a restart from a checkpoint",
			res.Stats.Restores, res.Stats.StartIteration)
	}
	if res.LostIterations <= 0 {
		t.Errorf("lost iterations = %d, want > 0 (crash rolled work back)", res.LostIterations)
	}
	if res.TotalIterations != res.Stats.Iterations+res.LostIterations {
		t.Errorf("total %d != useful %d + lost %d",
			res.TotalIterations, res.Stats.Iterations, res.LostIterations)
	}
	if res.TotalModelTime <= res.Run.ModelTime {
		t.Errorf("mission time %.6g not larger than final attempt %.6g",
			res.TotalModelTime, res.Run.ModelTime)
	}
	for g := range ref.X {
		if res.X[g] != ref.X[g] {
			t.Fatalf("solution differs from fault-free run at %d: %v vs %v", g, res.X[g], ref.X[g])
		}
	}
}

// TestSolveCGResilientHealthy: with no injector the resilient driver is
// one attempt with zero losses, matching SolveCG bit-for-bit.
func TestSolveCGResilientHealthy(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	b := sparse.RandomVector(A.NRows, 3)
	np := 4
	plan := bindPlan(t, csrPlan, A.NRows, A.NNZ(), np)
	opt := core.Options{Tol: 1e-10}

	ref, err := SolveCG(machine(np), plan, A, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveCGResilient(machine(np), plan, A, b, opt, ResilientOptions{Interval: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 || len(res.Failures) != 0 || res.LostIterations != 0 {
		t.Errorf("healthy solve: attempts=%d failures=%d lost=%d",
			res.Attempts, len(res.Failures), res.LostIterations)
	}
	if res.Stats.Iterations != ref.Stats.Iterations {
		t.Errorf("iterations %d != reference %d", res.Stats.Iterations, ref.Stats.Iterations)
	}
	for g := range ref.X {
		if res.X[g] != ref.X[g] {
			t.Fatalf("solution differs at %d", g)
		}
	}
}

// TestSolveCGResilientGivesUp: a plan that kills a rank immediately on
// every attempt exhausts MaxRestarts and returns the typed failure.
func TestSolveCGResilientGivesUp(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.RandomVector(A.NRows, 5)
	np := 2
	plan := bindPlan(t, csrPlan, A.NRows, A.NNZ(), np)
	opt := core.Options{Tol: 1e-10}

	ref, err := SolveCG(machine(np), plan, A, b, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Crashes every fifth of the healthy makespan: each restart makes at
	// most a fifth of the remaining progress before the next one lands,
	// so MaxRestarts=2 cannot reach convergence. Advance consumes at
	// most the attempt's modeled time, leaving later crashes pending.
	evs := make([]fault.Event, 12)
	for i := range evs {
		evs[i] = fault.Event{Kind: fault.Crash, Rank: 1, At: float64(i+1) * 0.2 * ref.Run.ModelTime, Dst: -1}
	}
	inj, err := fault.NewInjector(fault.Plan{Events: evs})
	if err != nil {
		t.Fatal(err)
	}
	m := machine(np)
	m.AttachInjector(inj)
	_, err = SolveCGResilient(m, plan, A, b, opt, ResilientOptions{Interval: 3, MaxRestarts: 2})
	var pf comm.PeerFailure
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want comm.PeerFailure after exhausting restarts", err)
	}
}
