// Package hpfexec plays the role of the HPF compiler's code generator
// for the paper's CG codes: given a *bound* directive plan
// (internal/hpf) and the runtime sparse matrix, it selects the
// execution strategy the directives imply and runs the distributed
// conjugate gradient solve.
//
// The mapping from directives to execution follows the paper:
//
//   - `SPARSE_MATRIX (CSR)` selects Scenario 1 (row-block, allgather);
//   - `SPARSE_MATRIX (CSC)` selects Scenario 2 (column-block). Without
//     further directives HPF-1 semantics force the serialized execution;
//     an `ITERATION ... PRIVATE(q(n)) WITH MERGE(+)` directive (§5.1)
//     switches it to the parallel private-merge execution;
//   - `REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1` (§5.2.2)
//     replaces the vectors' BLOCK distribution with the balanced
//     whole-row (atom) distribution before solving.
package hpfexec

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/hpf"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// Strategy describes the execution the directives selected.
type Strategy struct {
	Scenario string // "row-block CSR" or "col-block CSC"
	Mode     string // "local", "serialized" or "private-merge"
	Balanced bool   // partitioner-redistributed
	// SStep is the communication-avoiding blocking factor the solves
	// run with: 0 when the s-step path was not requested, 1 for plain
	// CG through the s-step entry points, >= 2 for s-step blocks.
	SStep int
	// Pipelined marks the overlap-based solver (core.CGPipelined): one
	// nonblocking allreduce per iteration, hidden behind the mat-vec.
	Pipelined bool
}

// String renders the strategy for logs.
func (s Strategy) String() string {
	out := s.Scenario + " / " + s.Mode
	if s.Balanced {
		out += " / balanced"
	}
	if s.SStep >= 2 {
		out += fmt.Sprintf(" / s-step(s=%d)", s.SStep)
	}
	if s.Pipelined {
		out += " / pipelined"
	}
	return out
}

// Result is a completed directive-driven solve.
type Result struct {
	X        []float64
	Stats    core.Stats
	Run      comm.RunStats
	Strategy Strategy
}

// SolveCG executes the CG of the paper's Figure 2 under the bound
// plan. A is the runtime matrix (CSR form; converted as the declared
// storage format requires), b the right-hand side. A processor killed
// by the fault layer surfaces as a typed comm.PeerFailure error (no
// deadlock); use SolveCGResilient to recover instead.
func SolveCG(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options) (*Result, error) {
	fn, finish, err := prepareCG(m, plan, A, b, opt, nil)
	if err != nil {
		return nil, err
	}
	run, err := m.RunChecked(fn)
	if err != nil {
		return nil, err
	}
	return finish(run)
}

// SolveCGTimeout is SolveCG under a deadlock watchdog: if the SPMD
// solve does not finish within d (wall time), the run is aborted and
// the machine's deadlock diagnostic is returned instead of hanging —
// the safety net cmd/hpfrun's -timeout flag routes through.
func SolveCGTimeout(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, d time.Duration) (*Result, error) {
	fn, finish, err := prepareCG(m, plan, A, b, opt, nil)
	if err != nil {
		return nil, err
	}
	run, err := m.RunTimeout(fn, d)
	if err != nil {
		return nil, err
	}
	return finish(run)
}

// ResilientOptions configures SolveCGResilient.
type ResilientOptions struct {
	// Interval checkpoints every Interval iterations (0 means 10).
	Interval int
	// MaxRestarts bounds how many failed attempts are retried before
	// giving up (0 means 3).
	MaxRestarts int
	// GuardTol is the residual-replacement threshold at restore
	// (core.Resilience.GuardTol; 0 means 1e-8).
	GuardTol float64
}

// ResilientResult is a completed solve that may have survived failures.
type ResilientResult struct {
	Result
	// Attempts counts runs including the successful one (1 = no failure).
	Attempts int
	// Failures lists the typed failures the restarts absorbed.
	Failures []comm.PeerFailure
	// TotalModelTime sums the modeled makespan over all attempts — the
	// mission time, failed work and recovery included. Result.Run holds
	// only the final attempt.
	TotalModelTime float64
	// TotalIterations counts CG iterations computed across attempts;
	// LostIterations is the share rolled back by failures (computed
	// past the last checkpoint and redone). Their difference is
	// Result.Stats.Iterations, the useful work.
	TotalIterations int
	LostIterations  int
}

// SolveCGResilient is SolveCG with checkpoint/rollback-restart: the
// solve runs core.CGResilient over a shared in-memory checkpoint
// store, and every comm.PeerFailure triggers a restart that resumes
// from the newest complete checkpoint. When the machine's fault
// injector carries a mission clock (an Advance(float64) method, as
// fault.Injector does), it is advanced by each failed attempt's
// modeled time so the remaining fault schedule stays aligned.
func SolveCGResilient(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, ropt ResilientOptions) (*ResilientResult, error) {
	if ropt.Interval == 0 {
		ropt.Interval = 10
	}
	if ropt.MaxRestarts == 0 {
		ropt.MaxRestarts = 3
	}
	store := core.NewCheckpointStore(m.NP())
	res := core.Resilience{Store: store, Interval: ropt.Interval, GuardTol: ropt.GuardTol}
	fn, finish, err := prepareCG(m, plan, A, b, opt,
		func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector) (core.Stats, error) {
			return core.CGResilient(p, op, bv, xv, opt, res)
		})
	if err != nil {
		return nil, err
	}
	out := &ResilientResult{}
	for {
		out.Attempts++
		// The iteration this attempt starts from: the newest complete
		// checkpoint, or 0 on a scratch start.
		startIter := 0
		if _, k := store.Latest(); k > 0 {
			startIter = k
		}
		run, runErr := m.RunChecked(fn)
		out.TotalModelTime += run.ModelTime
		if runErr == nil {
			r, err := finish(run)
			if err != nil {
				return nil, err
			}
			out.Result = *r
			out.TotalIterations += r.Stats.Iterations - r.Stats.StartIteration
			out.LostIterations = out.TotalIterations - r.Stats.Iterations
			return out, nil
		}
		var pf comm.PeerFailure
		if !errors.As(runErr, &pf) {
			return nil, runErr
		}
		out.Failures = append(out.Failures, pf)
		if got := store.Reached(); got > startIter {
			out.TotalIterations += got - startIter
		}
		if out.Attempts > ropt.MaxRestarts {
			return nil, fmt.Errorf("hpfexec: solve failed after %d attempts: %w", out.Attempts, pf)
		}
		if adv, ok := m.Injector().(interface{ Advance(float64) }); ok {
			adv.Advance(run.ModelTime)
		}
	}
}

// solveFn is the solver a prepared run executes per processor; nil
// selects the plain core.CG.
type solveFn func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector) (core.Stats, error)

// preparedCG is the RHS-independent analysis of a directive-driven CG
// solve: the validated execution strategy, the vector distribution
// (after any partitioner redistribution), and the converted matrix
// forms. Both the solo prepareCG path and the batch path (batch.go)
// run from it, so they cannot drift.
type preparedCG struct {
	A        *sparse.CSR
	csc      *sparse.CSC
	format   string // "csr" or "csc"
	hasMerge bool
	d        dist.Contiguous
	strategy Strategy
	// sstep is the resolved s-step blocking factor (0 = the s-step
	// path was not requested; set by PrepareSStep/SolveCGSStep).
	sstep int
	// pipelined selects core.CGPipelined for the solves (set by
	// PreparePipelined/SolveCGPipelined; exclusive with sstep >= 2).
	pipelined bool
}

// operator builds this rank's mat-vec operator inside the SPMD region.
// For CSR it performs the inspector-based executor selection (ghost
// halo vs broadcast) — a collective, so all ranks agree; ghost reports
// the choice.
func (pc *preparedCG) operator(p *comm.Proc) (op spmv.Operator, ghost bool) {
	switch pc.format {
	case "csr":
		// The s-step path always runs the matrix-powers executor: the
		// widened ghost closure is what makes one exchange serve a whole
		// basis block, so the broadcast fallback never applies.
		if pc.sstep >= 2 {
			return spmv.NewRowBlockCSRPowers(p, pc.A, pc.d, pc.sstep), true
		}
		// Inspector-based executor selection: build the ghost schedule
		// once; if the largest halo stays below a quarter of the vector,
		// the halo exchange beats the broadcast (E14/E15), otherwise fall
		// back to the allgather operator. The decision is collective so
		// all processors take the same branch.
		ghostOp := spmv.NewRowBlockCSRGhost(p, pc.A, pc.d)
		maxGhosts := p.AllreduceScalar(float64(ghostOp.NGhosts()), comm.OpMax)
		if maxGhosts <= 0.25*float64(pc.A.NRows) {
			return ghostOp, true
		}
		return spmv.NewRowBlockCSR(p, pc.A, pc.d), false
	case "csc":
		mode := spmv.ModeSerialized
		if pc.hasMerge {
			mode = spmv.ModePrivateMerge
		}
		return spmv.NewColBlockCSC(p, pc.csc, pc.d, mode), false
	}
	panic("hpfexec: unreachable format " + pc.format)
}

// analyzeCG validates the plan against the matrix and fixes everything
// a solve needs that does not depend on the right-hand side.
func analyzeCG(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR) (*preparedCG, error) {
	if A.NRows != A.NCols {
		return nil, fmt.Errorf("hpfexec: matrix must be square, got %dx%d", A.NRows, A.NCols)
	}
	n := A.NRows
	if plan.NP != m.NP() {
		return nil, fmt.Errorf("hpfexec: plan bound for %d processors, machine has %d", plan.NP, m.NP())
	}
	if len(plan.Sparse) != 1 {
		return nil, fmt.Errorf("hpfexec: need exactly one SPARSE_MATRIX declaration, have %d", len(plan.Sparse))
	}
	var sm hpf.SparseMatrix
	var smName string
	for name, d := range plan.Sparse {
		smName, sm = name, d
	}

	// The vector distribution: the ultimate alignment target among the
	// n-sized arrays (the paper's p), or any directly distributed
	// n-sized array.
	vecPlan, err := vectorRoot(plan, n)
	if err != nil {
		return nil, err
	}
	d, ok := vecPlan.Dist.(dist.Contiguous)
	if !ok {
		return nil, fmt.Errorf("hpfexec: vector distribution %s is not contiguous; the mat-vec scenarios need BLOCK-like mappings", vecPlan.Dist.Name())
	}

	strategy := Strategy{}

	// The §5.2.2 partitioner redistribution, if declared: rebalance the
	// rows (CSR) or columns (CSC) and align the vectors with the atoms.
	if _, declared := plan.Partitioners[smName]; declared {
		ptr := A.RowPtr
		if sm.Format == "csc" {
			ptr = A.ToCSC().ColPtr
		}
		_, atomCuts, err := plan.BindPartitioner(smName, ptr)
		if err != nil {
			return nil, err
		}
		d = dist.NewIrregular(atomCuts)
		strategy.Balanced = true
	}

	// The §5.1 extension: any ITERATION clause PRIVATE ... WITH MERGE(+)
	// unlocks the parallel execution of the CSC accumulation.
	hasMerge := false
	for _, it := range plan.Iterations {
		for _, cl := range it.Clauses {
			if cl.Kind == "private" && cl.Merge == "+" {
				hasMerge = true
			}
		}
	}

	var csc *sparse.CSC
	switch sm.Format {
	case "csr":
		strategy.Scenario = "row-block CSR"
		// The executor choice (broadcast vs ghost halo) is made inside
		// the SPMD region, where the inspector can measure the halo.
		strategy.Mode = "local"
	case "csc":
		strategy.Scenario = "col-block CSC"
		csc = A.ToCSC()
		if hasMerge {
			strategy.Mode = "private-merge"
		} else {
			strategy.Mode = "serialized"
		}
	default:
		return nil, fmt.Errorf("hpfexec: unsupported sparse format %q", sm.Format)
	}

	return &preparedCG{A: A, csc: csc, format: sm.Format, hasMerge: hasMerge, d: d, strategy: strategy}, nil
}

// prepareCG builds the SPMD body plus the post-run assembly for one
// right-hand side, so the Solve variants share everything but the Run
// call and the solver.
func prepareCG(m *comm.Machine, plan *hpf.Plan, A *sparse.CSR, b []float64, opt core.Options, solve solveFn) (func(p *comm.Proc), func(run comm.RunStats) (*Result, error), error) {
	pc, err := analyzeCG(m, plan, A)
	if err != nil {
		return nil, nil, err
	}
	return prepareCGFrom(m, pc, b, opt, solve)
}

// prepareCGFrom is prepareCG past the analysis step: it builds the
// SPMD body and the finisher from an already-prepared plan, so the
// s-step entry points can resolve the blocking factor in between.
func prepareCGFrom(m *comm.Machine, pc *preparedCG, b []float64, opt core.Options, solve solveFn) (func(p *comm.Proc), func(run comm.RunStats) (*Result, error), error) {
	if solve == nil {
		solve = func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector) (core.Stats, error) {
			return core.CG(p, op, bv, xv, opt)
		}
	}
	A := pc.A
	if len(b) != A.NRows {
		return nil, nil, fmt.Errorf("hpfexec: rhs length %d != %d", len(b), A.NRows)
	}

	res := &Result{Strategy: pc.strategy}
	var solveErr error
	var ghostChosen bool
	fn := func(p *comm.Proc) {
		op, ghost := pc.operator(p)
		if ghost && p.Rank() == 0 {
			ghostChosen = true
		}
		bv := darray.New(p, pc.d)
		xv := darray.New(p, pc.d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		st, err := solve(p, op, bv, xv)
		if err != nil {
			if p.Rank() == 0 {
				solveErr = err
			}
			return
		}
		full := xv.Gather()
		if p.Rank() == 0 {
			res.X = full
			res.Stats = st
		}
	}
	finish := func(run comm.RunStats) (*Result, error) {
		if solveErr != nil {
			return nil, solveErr
		}
		if pc.format == "csr" {
			if ghostChosen {
				res.Strategy.Mode = "local(ghost)"
			} else {
				res.Strategy.Mode = "local(broadcast)"
			}
		}
		res.Run = run
		return res, nil
	}
	return fn, finish, nil
}

// vectorRoot finds the array plan that plays the role of p in
// Figure 2: an n-sized array that others align to, falling back to any
// directly distributed n-sized array.
func vectorRoot(plan *hpf.Plan, n int) (*hpf.ArrayPlan, error) {
	targets := map[string]bool{}
	names := make([]string, 0, len(plan.Arrays))
	for name, a := range plan.Arrays {
		names = append(names, name)
		if a.AlignedTo != "" {
			targets[a.AlignedTo] = true
		}
	}
	sort.Strings(names) // deterministic fallback choice
	var fallback *hpf.ArrayPlan
	for _, name := range names {
		a := plan.Arrays[name]
		if a.Size != n || a.AlignedTo != "" {
			continue
		}
		if targets[name] {
			return a, nil
		}
		if fallback == nil {
			fallback = a
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("hpfexec: no distributed array of the vector size %d in the plan", n)
}
