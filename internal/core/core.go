// Package core implements the paper's subject matter: conjugate
// gradient iterative solvers expressed over the HPF-style data-parallel
// runtime — distributed vectors (darray), HPF distributions (dist) and
// the two matrix-vector partitionings (spmv). Each solver is the
// direct data-parallel transcription of its sequential counterpart in
// package seq; the code shape matches the paper's Figure 2:
//
//	DO k=1,Niter
//	  rho0 = rho
//	  rho  = DOT_PRODUCT(r, r)       ! sdot   (allreduce merge)
//	  beta = rho / rho0
//	  p    = beta*p + r              ! saypx  (local)
//	  q    = A . p                   ! distributed mat-vec
//	  alpha = rho / DOT_PRODUCT(p,q)
//	  x    = x + alpha*p             ! saxpy  (local)
//	  r    = r - alpha*q             ! saxpy  (local)
//	  IF (stop_criterion) EXIT
//	END DO
//
// Every processor of a comm.Machine executes the same solver body
// (SPMD); scalars such as rho and alpha are produced by collective
// reductions, so control flow stays identical across processors.
package core

import (
	"errors"
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// ErrBreakdown mirrors seq.ErrBreakdown for the distributed solvers.
var ErrBreakdown = errors.New("core: iterative method breakdown")

// Options controls iteration limits and tolerance.
type Options struct {
	// Tol is the threshold on the relative residual ||r||/||b||.
	// Zero means 1e-10.
	Tol float64
	// MaxIter limits iterations; zero means 2*n.
	MaxIter int
	// History, when true, records the relative residual per iteration.
	History bool
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2 * n
	}
	return o
}

// Stats reports a distributed solve's outcome and operation structure
// (identical on every processor).
type Stats struct {
	Iterations   int
	Converged    bool
	Residual     float64
	MatVecs      int
	TransMatVecs int
	DotProducts  int
	AXPYs        int
	History      []float64
}

// String summarises the stats.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d converged=%v relres=%.3e matvec=%d matvecT=%d dot=%d axpy=%d",
		s.Iterations, s.Converged, s.Residual, s.MatVecs, s.TransMatVecs, s.DotProducts, s.AXPYs)
}

type ops struct{ s *Stats }

func (o ops) dot(a, b *darray.Vector) float64 {
	o.s.DotProducts++
	return a.Dot(b)
}

func (o ops) axpy(y *darray.Vector, alpha float64, x *darray.Vector) {
	o.s.AXPYs++
	y.AXPY(alpha, x)
}

func (o ops) aypx(y *darray.Vector, beta float64, x *darray.Vector) {
	o.s.AXPYs++
	y.AYPX(beta, x)
}

func (o ops) apply(A spmv.Operator, x, y *darray.Vector) {
	o.s.MatVecs++
	A.Apply(x, y)
}

func (o ops) applyT(A spmv.TransposeOperator, x, y *darray.Vector) {
	o.s.TransMatVecs++
	A.ApplyT(x, y)
}

func (o ops) record(rel float64, opt Options) {
	if opt.History {
		o.s.History = append(o.s.History, rel)
	}
}

// residual0 computes r = b - A*x and returns (||r||, ||b||, counting
// one matvec and two dots).
func residual0(o ops, A spmv.Operator, b, x, r *darray.Vector) (rn, bn float64) {
	o.apply(A, x, r)
	r.Scale(-1)
	o.axpy(r, 1, b)
	rn = r.Norm2()
	bn = b.Norm2()
	o.s.DotProducts += 2
	if bn == 0 {
		bn = 1
	}
	return rn, bn
}

// CG solves A·x = b on the distributed machine — the Figure 2 HPF
// code. x carries the initial guess in and the solution out; b and x
// must be aligned with A's vector distribution.
func CG(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	var st Stats
	o := ops{&st}

	r := darray.NewAligned(b)
	rn, bn := residual0(o, A, b, x, r)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv := r.Clone()
	q := darray.NewAligned(b)
	rho := o.dot(r, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, q)
		pq := o.dot(pv, q)
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		o.axpy(r, -alpha, q)
		rn = r.Norm2()
		st.DotProducts++
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = o.dot(r, r)
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
	}
	st.Residual = rn / bn
	return st, nil
}

// PCG is CG with a distributed preconditioner (z = M⁻¹r per
// iteration).
func PCG(p *comm.Proc, A spmv.Operator, M Preconditioner, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	var st Stats
	o := ops{&st}

	r := darray.NewAligned(b)
	rn, bn := residual0(o, A, b, x, r)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	z := darray.NewAligned(b)
	M.Apply(r, z)
	pv := z.Clone()
	q := darray.NewAligned(b)
	rho := o.dot(r, z)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, q)
		pq := o.dot(pv, q)
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		o.axpy(r, -alpha, q)
		rn = r.Norm2()
		st.DotProducts++
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		M.Apply(r, z)
		rho0 := rho
		rho = o.dot(r, z)
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, z)
	}
	st.Residual = rn / bn
	return st, nil
}

// BiCG solves a general system using the two-residual recurrence. A
// must support the transpose product; under a row-block distribution
// that product re-introduces the merge communication (§2.1), which is
// why the paper singles BiCG out.
func BiCG(p *comm.Proc, A spmv.TransposeOperator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	var st Stats
	o := ops{&st}

	r := darray.NewAligned(b)
	rn, bn := residual0(o, A, b, x, r)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := r.Clone()
	pv := r.Clone()
	pt := rt.Clone()
	q := darray.NewAligned(b)
	qt := darray.NewAligned(b)
	rho := o.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, q)
		o.applyT(A, pt, qt)
		ptq := o.dot(pt, q)
		if ptq == 0 {
			return st, fmt.Errorf("%w: p̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / ptq
		o.axpy(x, alpha, pv)
		o.axpy(r, -alpha, q)
		o.axpy(rt, -alpha, qt)
		rn = r.Norm2()
		st.DotProducts++
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = o.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
		o.aypx(pt, beta, rt)
	}
	st.Residual = rn / bn
	return st, nil
}

// CGS avoids A^T with two forward products per iteration (§2.1), at
// the cost of possibly irregular convergence.
func CGS(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	var st Stats
	o := ops{&st}

	r := darray.NewAligned(b)
	rn, bn := residual0(o, A, b, x, r)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := r.Clone()
	pv := r.Clone()
	u := r.Clone()
	qv := darray.NewAligned(b)
	vh := darray.NewAligned(b)
	uq := darray.NewAligned(b)
	rho := o.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, vh)
		sigma := o.dot(rt, vh)
		if sigma == 0 {
			return st, fmt.Errorf("%w: r̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / sigma
		qv.CopyFrom(u)
		o.axpy(qv, -alpha, vh) // q = u - alpha*A*p
		uq.CopyFrom(u)
		o.axpy(uq, 1, qv) // uq = u + q
		o.axpy(x, alpha, uq)
		o.apply(A, uq, vh)
		o.axpy(r, -alpha, vh)
		rn = r.Norm2()
		st.DotProducts++
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = o.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		u.CopyFrom(r)
		o.axpy(u, beta, qv) // u = r + beta*q
		// p = u + beta*(q + beta*p)
		o.aypx(pv, beta, qv) // p = beta*p + q
		o.aypx(pv, beta, u)  // p = beta*p + u
	}
	st.Residual = rn / bn
	return st, nil
}

// BiCGSTAB is the stabilized variant: no A^T, two forward products and
// four inner products per iteration — the paper's note about demand on
// the DOT_PRODUCT intrinsic, visible here as four allreduce merges per
// loop.
func BiCGSTAB(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	var st Stats
	o := ops{&st}

	r := darray.NewAligned(b)
	rn, bn := residual0(o, A, b, x, r)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := r.Clone()
	pv := r.Clone()
	v := darray.NewAligned(b)
	s := darray.NewAligned(b)
	tv := darray.NewAligned(b)
	rho := o.dot(rt, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, v)
		rtv := o.dot(rt, v)
		if rtv == 0 {
			return st, fmt.Errorf("%w: r̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / rtv
		s.CopyFrom(r)
		o.axpy(s, -alpha, v)
		o.apply(A, s, tv)
		tt := o.dot(tv, tv)
		var omega float64
		if tt != 0 {
			omega = o.dot(tv, s) / tt
		}
		if omega == 0 {
			o.axpy(x, alpha, pv)
			r.CopyFrom(s)
			rn = r.Norm2()
			st.DotProducts++
			rel := rn / bn
			o.record(rel, opt)
			if rel <= opt.Tol {
				st.Converged = true
				st.Residual = rel
				return st, nil
			}
			return st, fmt.Errorf("%w: omega = 0 at iteration %d", ErrBreakdown, k)
		}
		o.axpy(x, alpha, pv)
		o.axpy(x, omega, s)
		r.CopyFrom(s)
		o.axpy(r, -omega, tv)
		rn = r.Norm2()
		st.DotProducts++
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = o.dot(rt, r)
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := (rho / rho0) * (alpha / omega)
		o.axpy(pv, -omega, v) // p = p - omega*v
		o.aypx(pv, beta, r)   // p = beta*p + r
	}
	st.Residual = rn / bn
	return st, nil
}
