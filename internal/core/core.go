// Package core implements the paper's subject matter: conjugate
// gradient iterative solvers expressed over the HPF-style data-parallel
// runtime — distributed vectors (darray), HPF distributions (dist) and
// the two matrix-vector partitionings (spmv). Each solver is the
// direct data-parallel transcription of its sequential counterpart in
// package seq; the code shape matches the paper's Figure 2:
//
//	DO k=1,Niter
//	  rho0 = rho
//	  rho  = DOT_PRODUCT(r, r)       ! sdot   (allreduce merge)
//	  beta = rho / rho0
//	  p    = beta*p + r              ! saypx  (local)
//	  q    = A . p                   ! distributed mat-vec
//	  alpha = rho / DOT_PRODUCT(p,q)
//	  x    = x + alpha*p             ! saxpy  (local)
//	  r    = r - alpha*q             ! saxpy  (local)
//	  IF (stop_criterion) EXIT
//	END DO
//
// Every processor of a comm.Machine executes the same solver body
// (SPMD); scalars such as rho and alpha are produced by collective
// reductions, so control flow stays identical across processors.
//
// The solvers are communication-avoiding in the scalar merges: local
// dot-product partials that the textbook form merges one at a time are
// batched into single comm.AllreduceScalars rounds (element-wise
// combination in a batch is the same arithmetic as separate scalar
// allreduces, so the batched solvers produce bit-identical iterates).
// CG additionally reuses the merged ||r||² as the next rho — the
// Figure 2 loop recomputes DOT_PRODUCT(r,r) the merge already produced
// — dropping its synchronisation count from three rounds per iteration
// to two; CGFused trades bit-compatibility for a single round. Stats
// counts the rounds, and experiment E19 measures the effect.
package core

import (
	"errors"
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// ErrBreakdown mirrors seq.ErrBreakdown for the distributed solvers.
var ErrBreakdown = errors.New("core: iterative method breakdown")

// Options controls iteration limits and tolerance.
type Options struct {
	// Tol is the threshold on the relative residual ||r||/||b||.
	// Zero means 1e-10.
	Tol float64
	// MaxIter limits iterations; zero means 2*n.
	MaxIter int
	// History, when true, records the relative residual per iteration.
	History bool
	// Work, when non-nil, supplies the solver's temporary vectors from
	// a reusable per-processor pool instead of fresh allocations, so
	// repeated solves (and their iterations) stay off the heap. Each
	// processor must pass its own Workspace.
	Work *Workspace
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 2 * n
	}
	return o
}

// Stats reports a distributed solve's outcome and operation structure
// (identical on every processor).
type Stats struct {
	Iterations   int
	Converged    bool
	Residual     float64
	MatVecs      int
	TransMatVecs int
	DotProducts  int
	AXPYs        int
	// Reductions counts scalar allreduce merge rounds — the t_s·log NP
	// synchronisations per solve. Batched merges count one round
	// regardless of how many partials they carry, so this is the
	// communication-avoidance metric of experiment E19.
	Reductions int
	History    []float64
	// Checkpoints, Restores and Replacements count CGResilient's
	// resilience actions in this attempt: checkpoints written, restores
	// performed at entry, and residual replacements the guard forced.
	// Zero for the non-resilient solvers.
	Checkpoints  int
	Restores     int
	Replacements int
	// StartIteration is the iteration CGResilient resumed from (0 on a
	// clean start); Iterations stays the global count, so the attempt
	// itself ran Iterations - StartIteration iterations.
	StartIteration int
	// SStep is the s-step blocking factor CGSStep ran with (1 = plain
	// CG, 0 for the other solvers). When the stability guard tripped,
	// Replacements is nonzero and the tail of the solve ran at s=1.
	SStep int
	// Pipelined reports that CGPipelined ran with overlap enabled: one
	// nonblocking allreduce per iteration, hidden behind the mat-vec.
	// When its drift guard tripped, Replacements is nonzero and the
	// tail of the solve ran as plain CG.
	Pipelined bool
}

// String summarises the stats.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d converged=%v relres=%.3e matvec=%d matvecT=%d dot=%d axpy=%d reduce=%d",
		s.Iterations, s.Converged, s.Residual, s.MatVecs, s.TransMatVecs, s.DotProducts, s.AXPYs, s.Reductions)
}

// newStats builds the Stats for a solve, preallocating the residual
// history to its MaxIter bound so record never reallocates mid-solve.
func newStats(opt Options) Stats {
	var st Stats
	if opt.History {
		st.History = make([]float64, 0, opt.MaxIter)
	}
	return st
}

type ops struct {
	s *Stats
	p *comm.Proc
}

func (o ops) dot(a, b *darray.Vector) float64 {
	o.s.DotProducts++
	o.s.Reductions++
	return a.Dot(b)
}

// dotLocal is the communication-free half of a dot product; the caller
// batches the partial into a merge round.
func (o ops) dotLocal(a, b *darray.Vector) float64 {
	o.s.DotProducts++
	return a.DotLocal(b)
}

// mergeScalar merges one local partial sum in a single allreduce round.
func (o ops) mergeScalar(v float64) float64 {
	o.s.Reductions++
	return o.p.AllreduceScalar(v, comm.OpSum)
}

// merge combines several local partial sums in ONE batched allreduce
// round — the fused form of len(d) separate mergeScalar calls, with
// identical element-wise arithmetic (so identical results) but a single
// t_s·log NP synchronisation.
func (o ops) merge(d []float64) {
	o.s.Reductions++
	o.p.AllreduceScalars(d, comm.OpSum)
}

func (o ops) axpy(y *darray.Vector, alpha float64, x *darray.Vector) {
	o.s.AXPYs++
	y.AXPY(alpha, x)
}

// axpyNormSqLocal fuses y += alpha*x with the local partial of the
// updated ||y||² (one sweep instead of two, bit-identical results).
func (o ops) axpyNormSqLocal(y *darray.Vector, alpha float64, x *darray.Vector) float64 {
	o.s.AXPYs++
	o.s.DotProducts++
	return y.AXPYNormSqLocal(alpha, x)
}

func (o ops) aypx(y *darray.Vector, beta float64, x *darray.Vector) {
	o.s.AXPYs++
	y.AYPX(beta, x)
}

func (o ops) apply(A spmv.Operator, x, y *darray.Vector) {
	o.s.MatVecs++
	A.Apply(x, y)
}

// applyDotLocal computes y = A·x and the local partial of x·y — in one
// matrix pass when the operator supports fusion (spmv.FusedOperator),
// or as Apply followed by the local dot otherwise. Either way the
// partial is bit-identical and no communication happens here; the
// caller batches it into a merge round.
func (o ops) applyDotLocal(A spmv.Operator, x, y *darray.Vector) float64 {
	o.s.MatVecs++
	o.s.DotProducts++
	if f, ok := A.(spmv.FusedOperator); ok {
		return f.ApplyDot(x, y)
	}
	A.Apply(x, y)
	return x.DotLocal(y)
}

func (o ops) applyT(A spmv.TransposeOperator, x, y *darray.Vector) {
	o.s.TransMatVecs++
	A.ApplyT(x, y)
}

func (o ops) record(rel float64, opt Options) {
	if opt.History {
		o.s.History = append(o.s.History, rel)
	}
}

// residual0 computes r = b - A*x and returns (||r||², ||b||), merging
// the two setup norms in one batched round (counting one matvec and two
// dots). ||r||² is returned unsquare-rooted because CG reuses it as the
// initial rho.
func residual0(o ops, A spmv.Operator, b, x, r *darray.Vector) (rnsq, bn float64) {
	o.apply(A, x, r)
	r.Scale(-1)
	o.axpy(r, 1, b)
	var d [2]float64
	d[0] = r.NormSqLocal()
	d[1] = b.NormSqLocal()
	o.s.DotProducts += 2
	o.merge(d[:])
	bn = math.Sqrt(d[1])
	if bn == 0 {
		bn = 1
	}
	return d[0], bn
}

// CG solves A·x = b on the distributed machine — the Figure 2 HPF
// code. x carries the initial guess in and the solution out; b and x
// must be aligned with A's vector distribution.
//
// The loop is the communication-avoiding restructuring of Figure 2:
// the mat-vec is fused with DOT_PRODUCT(p,q) (one merge), the residual
// update with its norm (a second merge), and the merged ||r||² is
// reused as the next rho instead of recomputing DOT_PRODUCT(r,r) — two
// allreduce rounds per iteration instead of three, with iterates that
// are bit-identical to the textbook ordering (the dropped merge would
// have reduced exactly the partials the norm merge already did).
func CG(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv := w.take(b)
	pv.CopyFrom(r)
	q := w.take(b)
	rho := rnsq // = DOT_PRODUCT(r,r): the setup merge already produced it

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		// Round 1: q = A·p fused with the p·q partial.
		pq := o.mergeScalar(o.applyDotLocal(A, pv, q))
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		// Round 2: r -= alpha*q fused with ||r||², which serves both
		// the stopping test and the next rho.
		rnsq = o.mergeScalar(o.axpyNormSqLocal(r, -alpha, q))
		rn = math.Sqrt(rnsq)
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = rnsq
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
	}
	st.Residual = rn / bn
	return st, nil
}

// CGFused is the single-reduction rearrangement of CG: the scalars an
// iteration needs — p·q for alpha, r·q and q·q from which the updated
// residual norm follows by the recurrence
// ||r - αq||² = ||r||² - 2α(r·q) + α²(q·q), and a refreshed r·r — are
// merged in ONE batched allreduce, halving CG's synchronisation count
// again. The refreshed r·r is the stabiliser: rho is taken from the
// explicit dot every iteration, so the recurrence is only ever one
// step deep and its cancellation error (severe when ||r_new||² ≪
// ||r||²) perturbs a single beta instead of compounding into every
// later alpha — without the refresh the iterates themselves diverge
// shortly after the residual bottoms out. Unlike CG's own fusions the
// recurrence changes the floating-point trajectory (it is not
// bit-identical to CG), so the stopping decision confirms with an
// explicitly merged norm whenever the recurrence goes nonpositive or
// signals convergence.
func CGFused(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv := w.take(b)
	pv.CopyFrom(r)
	q := w.take(b)
	var d [4]float64

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		// The single round: {p·q, r·q, q·q, r·r} batched.
		d[0] = o.applyDotLocal(A, pv, q)
		d[1] = o.dotLocal(r, q)
		d[2] = o.dotLocal(q, q)
		d[3] = o.dotLocal(r, r)
		o.merge(d[:])
		pq, rq, qq := d[0], d[1], d[2]
		rho := d[3]
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		o.axpy(r, -alpha, q)
		rnsq = rho - 2*alpha*rq + alpha*alpha*qq
		rn = math.Sqrt(rnsq)
		if rnsq <= 0 || rn/bn <= opt.Tol {
			// The recurrence has drifted or claims convergence:
			// confirm with an explicit norm (one extra round, only
			// paid near the end of the solve).
			rnsq = o.mergeScalar(r.NormSqLocal())
			st.DotProducts++
			rn = math.Sqrt(rnsq)
		}
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		beta := rnsq / rho
		o.aypx(pv, beta, r)
	}
	st.Residual = rn / bn
	return st, nil
}

// dotBoxed is the pre-fusion DOT_PRODUCT merge: one allreduce round per
// scalar, through the slice-boxed general Allreduce (so it pays the
// per-call allocations the pooled scalar path eliminated). Kept only
// for CGUnfused, the E19 measurement baseline.
func (o ops) dotBoxed(a, b *darray.Vector) float64 {
	o.s.DotProducts++
	o.s.Reductions++
	return o.p.AllreduceWith([]float64{a.DotLocal(b)}, comm.OpSum, comm.AlgoTree)[0]
}

// CGUnfused is the literal Figure 2 transcription kept as the
// measurement baseline for experiment E19: every scalar merges in its
// own allreduce round — DOT_PRODUCT(p,q), the convergence norm, and a
// recomputed DOT_PRODUCT(r,r), three rounds per iteration — with the
// boxed per-merge allocations the fused path eliminated. Its iterates
// are bit-identical to CG's (the fusions reorder no arithmetic); only
// the synchronisation and allocation behaviour differ.
func CGUnfused(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}

	r := darray.NewAligned(b)
	o.apply(A, x, r)
	r.Scale(-1)
	o.axpy(r, 1, b)
	rn := math.Sqrt(o.dotBoxed(r, r))
	bn := math.Sqrt(o.dotBoxed(b, b))
	if bn == 0 {
		bn = 1
	}
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv := r.Clone()
	q := darray.NewAligned(b)
	rho := o.dotBoxed(r, r)

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, q)
		pq := o.dotBoxed(pv, q)
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		o.axpy(r, -alpha, q)
		rn = math.Sqrt(o.dotBoxed(r, r))
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = o.dotBoxed(r, r)
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
	}
	st.Residual = rn / bn
	return st, nil
}

// PCG is CG with a distributed preconditioner (z = M⁻¹r per
// iteration). The preconditioner solve is hoisted before the stopping
// test so DOT_PRODUCT(r,z) batches with the convergence norm — two
// merge rounds per iteration instead of three, bit-identical iterates
// (the hoist spends one discarded M-solve on the final iteration).
func PCG(p *comm.Proc, A spmv.Operator, M Preconditioner, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	z := w.take(b)
	M.Apply(r, z)
	pv := w.take(b)
	pv.CopyFrom(z)
	q := w.take(b)
	rho := o.dot(r, z)
	var d [2]float64

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		pq := o.mergeScalar(o.applyDotLocal(A, pv, q))
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		d[0] = o.axpyNormSqLocal(r, -alpha, q)
		M.Apply(r, z)
		d[1] = o.dotLocal(r, z)
		o.merge(d[:])
		rn = math.Sqrt(d[0])
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = d[1]
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, z)
	}
	st.Residual = rn / bn
	return st, nil
}

// BiCG solves a general system using the two-residual recurrence. A
// must support the transpose product; under a row-block distribution
// that product re-introduces the merge communication (§2.1), which is
// why the paper singles BiCG out. The convergence norm and
// DOT_PRODUCT(r̃,r) batch into one round: two merges per iteration.
func BiCG(p *comm.Proc, A spmv.TransposeOperator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := w.take(b)
	rt.CopyFrom(r)
	pv := w.take(b)
	pv.CopyFrom(r)
	pt := w.take(b)
	pt.CopyFrom(rt)
	q := w.take(b)
	qt := w.take(b)
	rho := rnsq // r̃ = r initially, so DOT_PRODUCT(r̃,r) = ||r||²
	var d [2]float64

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, q)
		o.applyT(A, pt, qt)
		ptq := o.mergeScalar(o.dotLocal(pt, q))
		if ptq == 0 {
			return st, fmt.Errorf("%w: p̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / ptq
		o.axpy(x, alpha, pv)
		d[0] = o.axpyNormSqLocal(r, -alpha, q)
		o.axpy(rt, -alpha, qt)
		d[1] = o.dotLocal(rt, r)
		o.merge(d[:])
		rn = math.Sqrt(d[0])
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = d[1]
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
		o.aypx(pt, beta, rt)
	}
	st.Residual = rn / bn
	return st, nil
}

// CGS avoids A^T with two forward products per iteration (§2.1), at
// the cost of possibly irregular convergence. Two merge rounds per
// iteration (sigma, then the batched norm + rho).
func CGS(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := w.take(b)
	rt.CopyFrom(r)
	pv := w.take(b)
	pv.CopyFrom(r)
	u := w.take(b)
	u.CopyFrom(r)
	qv := w.take(b)
	vh := w.take(b)
	uq := w.take(b)
	rho := rnsq
	var d [2]float64

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, vh)
		sigma := o.mergeScalar(o.dotLocal(rt, vh))
		if sigma == 0 {
			return st, fmt.Errorf("%w: r̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / sigma
		qv.CopyFrom(u)
		o.axpy(qv, -alpha, vh) // q = u - alpha*A*p
		uq.CopyFrom(u)
		o.axpy(uq, 1, qv) // uq = u + q
		o.axpy(x, alpha, uq)
		o.apply(A, uq, vh)
		d[0] = o.axpyNormSqLocal(r, -alpha, vh)
		d[1] = o.dotLocal(rt, r)
		o.merge(d[:])
		rn = math.Sqrt(d[0])
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = d[1]
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		u.CopyFrom(r)
		o.axpy(u, beta, qv) // u = r + beta*q
		// p = u + beta*(q + beta*p)
		o.aypx(pv, beta, qv) // p = beta*p + q
		o.aypx(pv, beta, u)  // p = beta*p + u
	}
	st.Residual = rn / bn
	return st, nil
}

// BiCGSTAB is the stabilized variant: no A^T, two forward products and
// five inner products per iteration — the paper's note about demand on
// the DOT_PRODUCT intrinsic. Batching pairs them into three allreduce
// merges per loop: r̃·Ap, then {t·t, t·s}, then the norm with r̃·r.
func BiCGSTAB(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options) (Stats, error) {
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	rt := w.take(b)
	rt.CopyFrom(r)
	pv := w.take(b)
	pv.CopyFrom(r)
	v := w.take(b)
	s := w.take(b)
	tv := w.take(b)
	rho := rnsq
	var d [2]float64

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		o.apply(A, pv, v)
		rtv := o.mergeScalar(o.dotLocal(rt, v))
		if rtv == 0 {
			return st, fmt.Errorf("%w: r̃·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / rtv
		s.CopyFrom(r)
		o.axpy(s, -alpha, v)
		o.apply(A, s, tv)
		d[0] = o.dotLocal(tv, tv)
		d[1] = o.dotLocal(tv, s)
		o.merge(d[:])
		tt, ts := d[0], d[1]
		var omega float64
		if tt != 0 {
			omega = ts / tt
		}
		if omega == 0 {
			o.axpy(x, alpha, pv)
			r.CopyFrom(s)
			rn = math.Sqrt(o.mergeScalar(r.NormSqLocal()))
			st.DotProducts++
			rel := rn / bn
			o.record(rel, opt)
			if rel <= opt.Tol {
				st.Converged = true
				st.Residual = rel
				return st, nil
			}
			return st, fmt.Errorf("%w: omega = 0 at iteration %d", ErrBreakdown, k)
		}
		o.axpy(x, alpha, pv)
		o.axpy(x, omega, s)
		r.CopyFrom(s)
		d[0] = o.axpyNormSqLocal(r, -omega, tv)
		d[1] = o.dotLocal(rt, r)
		o.merge(d[:])
		rn = math.Sqrt(d[0])
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = d[1]
		if rho == 0 || rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := (rho / rho0) * (alpha / omega)
		o.axpy(pv, -omega, v) // p = p - omega*v
		o.aypx(pv, beta, r)   // p = beta*p + r
	}
	st.Residual = rn / bn
	return st, nil
}
