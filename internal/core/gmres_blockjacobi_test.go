package core

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

func TestDistributedGMRESSolves(t *testing.T) {
	// Nonsymmetric system: CG is inapplicable, GMRES must work.
	n := 48
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1.5)
			coo.Add(i+1, i, -0.5)
		}
	}
	A := coo.ToCSR()
	b := sparse.RandomVector(n, 7)
	for _, np := range []int{1, 2, 4} {
		d := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			st, err := GMRES(p, op, bv, xv, 20, Options{Tol: 1e-10, MaxIter: 20 * n})
			if err != nil {
				t.Errorf("np=%d: %v", np, err)
				return
			}
			if !st.Converged {
				t.Errorf("np=%d: not converged: %v", np, st)
				return
			}
			sol := xv.Gather()
			if p.Rank() == 0 {
				if rr := relResidual(A, sol, b); rr > 1e-7 {
					t.Errorf("np=%d: residual %g", np, rr)
				}
			}
		})
	}
}

func TestDistributedGMRESMatchesSequential(t *testing.T) {
	A := sparse.Laplace2D(6, 6)
	b := sparse.RandomVector(A.NRows, 3)
	xs := make([]float64, A.NRows)
	seqSt, err := seq.GMRES(A, b, xs, 15, seq.Options{Tol: 1e-10, MaxIter: 40 * A.NRows})
	if err != nil {
		t.Fatal(err)
	}
	np := 3
	d := dist.NewBlock(A.NRows, np)
	machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		xv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		st, err := GMRES(p, op, bv, xv, 15, Options{Tol: 1e-10, MaxIter: 40 * A.NRows})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if st.Iterations != seqSt.Iterations {
			t.Errorf("distributed %d iterations, sequential %d", st.Iterations, seqSt.Iterations)
		}
		sol := xv.Gather()
		if p.Rank() == 0 {
			for i := range xs {
				if math.Abs(sol[i]-xs[i]) > 1e-6 {
					t.Errorf("solutions differ at %d: %g vs %g", i, sol[i], xs[i])
					return
				}
			}
		}
	})
}

func TestDistributedGMRESValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("restart < 1 should panic")
		}
	}()
	A := sparse.Laplace1D(8)
	d := dist.NewBlock(8, 1)
	machine(1).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		b := darray.New(p, d)
		x := darray.New(p, d)
		GMRES(p, op, b, x, 0, Options{})
	})
}

func TestBlockJacobiStrongerThanPointJacobi(t *testing.T) {
	// Size chosen so the block coupling reliably beats diagonal scaling.
	A := sparse.Laplace2D(24, 24)
	n := A.NRows
	b := sparse.Ones(n)
	np := 4
	d := dist.NewBlock(n, np)
	iters := map[string]int{}
	for _, precond := range []string{"jacobi", "block-ic0", "block-ssor"} {
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			var M Preconditioner
			var err error
			switch precond {
			case "jacobi":
				M, err = NewJacobi(p, A, d)
			case "block-ic0":
				M, err = NewBlockJacobi(p, A, d, "ic0")
			case "block-ssor":
				M, err = NewBlockJacobi(p, A, d, "ssor")
			}
			if err != nil {
				t.Errorf("%s: %v", precond, err)
				return
			}
			st, err := PCG(p, op, M, bv, xv, Options{Tol: 1e-10})
			if err != nil {
				t.Errorf("%s: %v", precond, err)
				return
			}
			if !st.Converged {
				t.Errorf("%s: not converged", precond)
			}
			sol := xv.Gather()
			if p.Rank() == 0 {
				iters[precond] = st.Iterations
				if rr := relResidual(A, sol, b); rr > 1e-8 {
					t.Errorf("%s: residual %g", precond, rr)
				}
			}
		})
	}
	if iters["block-ic0"] >= iters["jacobi"] {
		t.Errorf("block-IC0 %d iterations >= point Jacobi %d", iters["block-ic0"], iters["jacobi"])
	}
	// Block-SSOR captures the same intra-block coupling but more weakly;
	// it must at least not be worse than point Jacobi.
	if iters["block-ssor"] > iters["jacobi"] {
		t.Errorf("block-SSOR %d iterations > point Jacobi %d", iters["block-ssor"], iters["jacobi"])
	}
}

func TestBlockJacobiEmptyBlocks(t *testing.T) {
	// An irregular distribution with an empty processor must not break
	// the preconditioner.
	A := sparse.Laplace1D(12)
	d := dist.NewIrregular([]int{0, 6, 6, 12})
	machine(3).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		xv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return 1 })
		M, err := NewBlockJacobi(p, A, d, "ic0")
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if M.Name() != "block-jacobi(ic0)" {
			t.Errorf("name %q", M.Name())
		}
		st, err := PCG(p, op, M, bv, xv, Options{Tol: 1e-10})
		if err != nil || !st.Converged {
			t.Errorf("empty-block PCG: %v %v", st, err)
		}
	})
}

func TestBlockJacobiCollectiveFailure(t *testing.T) {
	// A zero diagonal in one processor's block must fail on all.
	coo := sparse.NewCOO(8, 8)
	for i := 0; i < 8; i++ {
		if i != 6 {
			coo.Add(i, i, 2)
		}
	}
	coo.Add(6, 7, 1)
	coo.Add(7, 6, 1)
	A := coo.ToCSR()
	d := dist.NewBlock(8, 2)
	machine(2).Run(func(p *comm.Proc) {
		if _, err := NewBlockJacobi(p, A, d, "ic0"); err == nil {
			t.Errorf("rank %d: factorisation of singular block accepted", p.Rank())
		}
	})
}

func TestDistributedChebyshevMatchesCG(t *testing.T) {
	n := 64
	A := sparse.Laplace1D(n)
	eigMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	eigMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	b := sparse.RandomVector(n, 6)
	for _, np := range []int{1, 4} {
		d := dist.NewBlock(n, np)
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			st, err := Chebyshev(p, op, bv, xv, eigMin, eigMax, Options{Tol: 1e-9, MaxIter: 20 * n})
			if err != nil {
				t.Errorf("np=%d: %v", np, err)
				return
			}
			if !st.Converged {
				t.Errorf("np=%d: %v", np, st)
				return
			}
			sol := xv.Gather()
			if p.Rank() == 0 {
				if rr := relResidual(A, sol, b); rr > 1e-7 {
					t.Errorf("np=%d residual %g", np, rr)
				}
			}
			// Almost no allreduce merges: the §4 dot-cost escape.
			if perIter := float64(st.DotProducts) / float64(st.Iterations); perIter > 0.25 {
				t.Errorf("np=%d: %.2f dots/iter", np, perIter)
			}
		})
	}
}

func TestDistributedChebyshevValidation(t *testing.T) {
	A := sparse.Laplace1D(8)
	d := dist.NewBlock(8, 1)
	machine(1).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		b := darray.New(p, d)
		x := darray.New(p, d)
		if _, err := Chebyshev(p, op, b, x, -1, 2, Options{}); err == nil {
			t.Error("bad bounds accepted")
		}
	})
}
