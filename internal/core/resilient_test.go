package core

import (
	"errors"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/fault"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// resilientFn builds the SPMD body one restart attempt runs: fresh
// vectors (a real restart re-derives everything from A, b and the
// store), CGResilient over the shared checkpoint store, solution and
// stats captured on rank 0.
func resilientFn(A *sparse.CSR, b []float64, d dist.Block, store *CheckpointStore, interval int,
	sol *[]float64, st *Stats, solveErr *error) func(p *comm.Proc) {
	return func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		x := darray.New(p, d)
		s, err := CGResilient(p, op, bv, x, Options{Tol: 1e-10},
			Resilience{Store: store, Interval: interval})
		full := x.Gather()
		if p.Rank() == 0 {
			*sol, *st, *solveErr = full, s, err
		}
	}
}

// TestCGResilientHealthyMatchesCG: with no faults, the checkpointing
// solver is CG plus pure-copy snapshots — same merges, same
// arithmetic — so iterates and solution must be bit-identical, and the
// only trace of resilience is the checkpoint count and the modeled
// stable-storage time.
func TestCGResilientHealthyMatchesCG(t *testing.T) {
	A := sparse.RandomSPD(60, 5, 21)
	b := sparse.RandomVector(60, 8)
	for _, np := range testNPs {
		d := dist.NewBlock(60, np)
		var solCG, solRes []float64
		var stCG, stRes Stats
		store := NewCheckpointStore(np)
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			x1 := darray.New(p, d)
			x2 := darray.New(p, d)
			s1, err1 := CG(p, op, bv, x1, Options{Tol: 1e-10, History: true})
			s2, err2 := CGResilient(p, op, bv, x2, Options{Tol: 1e-10, History: true},
				Resilience{Store: store, Interval: 5})
			if err1 != nil || err2 != nil {
				t.Errorf("np=%d: %v %v", np, err1, err2)
				return
			}
			f1, f2 := x1.Gather(), x2.Gather()
			if p.Rank() == 0 {
				solCG, solRes, stCG, stRes = f1, f2, s1, s2
			}
		})
		if stCG.Iterations != stRes.Iterations || !stRes.Converged {
			t.Fatalf("np=%d: CG %d iterations, resilient %d (converged=%v)",
				np, stCG.Iterations, stRes.Iterations, stRes.Converged)
		}
		for g := range solCG {
			if solCG[g] != solRes[g] {
				t.Fatalf("np=%d: solutions differ at %d: %v vs %v", np, g, solCG[g], solRes[g])
			}
		}
		for i := range stCG.History {
			if stCG.History[i] != stRes.History[i] {
				t.Fatalf("np=%d: history differs at %d", np, i)
			}
		}
		if want := stCG.Iterations / 5; stRes.Checkpoints != want {
			t.Errorf("np=%d: %d checkpoints over %d iterations, want %d",
				np, stRes.Checkpoints, stRes.Iterations, want)
		}
		if stRes.Restores != 0 || stRes.Replacements != 0 || stRes.StartIteration != 0 {
			t.Errorf("np=%d: healthy solve reports restores=%d replacements=%d start=%d",
				np, stRes.Restores, stRes.Replacements, stRes.StartIteration)
		}
	}
}

// TestCGResilientSurvivesCrash is the tentpole scenario: a rank is
// killed mid-solve by the deterministic fault plan; the run surfaces a
// typed PeerFailure; the restarted attempt restores the newest
// complete checkpoint and replays CG's exact trajectory — the final
// solution is bit-identical to the fault-free solve. The same crash
// without resilience must also come back as a typed error, not a hang.
func TestCGResilientSurvivesCrash(t *testing.T) {
	const np, n, interval = 4, 96, 3
	A := sparse.RandomSPD(n, 5, 11)
	b := sparse.RandomVector(n, 4)
	d := dist.NewBlock(n, np)

	// Fault-free reference solution and makespan.
	var ref []float64
	var refSt Stats
	healthy := machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		x := darray.New(p, d)
		s, err := CG(p, op, bv, x, Options{Tol: 1e-10})
		if err != nil {
			t.Errorf("reference CG: %v", err)
		}
		full := x.Gather()
		if p.Rank() == 0 {
			ref, refSt = full, s
		}
	})

	plan := fault.Plan{Events: []fault.Event{
		{Kind: fault.Crash, Rank: 1, At: 0.6 * healthy.ModelTime, Dst: -1},
	}}

	// Without resilience: typed PeerFailure, no deadlock.
	{
		inj, err := fault.NewInjector(plan)
		if err != nil {
			t.Fatal(err)
		}
		m := machine(np)
		m.AttachInjector(inj)
		_, err = m.RunChecked(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			x := darray.New(p, d)
			_, _ = CG(p, op, bv, x, Options{Tol: 1e-10})
		})
		var pf comm.PeerFailure
		if !errors.As(err, &pf) {
			t.Fatalf("plain CG under crash: err = %v, want PeerFailure", err)
		}
		if pf.Rank != 1 {
			t.Errorf("blamed rank %d, want 1", pf.Rank)
		}
	}

	// With resilience: restart until the solve completes.
	inj, err := fault.NewInjector(plan)
	if err != nil {
		t.Fatal(err)
	}
	m := machine(np)
	m.AttachInjector(inj)
	store := NewCheckpointStore(np)
	var sol []float64
	var st Stats
	var solveErr error
	fn := resilientFn(A, b, d, store, interval, &sol, &st, &solveErr)
	attempts := 0
	for {
		attempts++
		if attempts > 4 {
			t.Fatal("solve did not complete within 4 attempts")
		}
		rs, err := m.RunChecked(fn)
		if err == nil {
			break
		}
		var pf comm.PeerFailure
		if !errors.As(err, &pf) {
			t.Fatalf("attempt %d: err = %v, want PeerFailure", attempts, err)
		}
		inj.Advance(rs.ModelTime)
	}
	if solveErr != nil {
		t.Fatalf("CGResilient: %v", solveErr)
	}
	if attempts != 2 {
		t.Errorf("completed in %d attempts, want 2 (one crash)", attempts)
	}
	if !st.Converged || st.Iterations != refSt.Iterations {
		t.Fatalf("resilient solve: converged=%v iters=%d, reference iters=%d",
			st.Converged, st.Iterations, refSt.Iterations)
	}
	if st.Restores != 1 || st.StartIteration == 0 {
		t.Errorf("final attempt: restores=%d start=%d, want 1 restore from a checkpoint",
			st.Restores, st.StartIteration)
	}
	if st.Replacements != 0 {
		t.Errorf("guard replaced the residual on an exact checkpoint (replacements=%d)", st.Replacements)
	}
	for g := range ref {
		if sol[g] != ref[g] {
			t.Fatalf("solution differs from fault-free run at %d: %v vs %v", g, sol[g], ref[g])
		}
	}
}

// TestCGResilientGuardReplacesCorruptResidual: if the checkpointed
// residual no longer matches b - A·x (silent corruption), the guard
// must detect the deviation at restore, substitute the true residual,
// and still converge.
func TestCGResilientGuardReplacesCorruptResidual(t *testing.T) {
	const np, n, interval = 2, 64, 4
	A := sparse.RandomSPD(n, 5, 31)
	b := sparse.RandomVector(n, 9)
	d := dist.NewBlock(n, np)
	store := NewCheckpointStore(np)
	var sol []float64
	var st Stats
	var solveErr error

	// Populate the store: run a few iterations past one checkpoint.
	machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		x := darray.New(p, d)
		_, _ = CGResilient(p, op, bv, x, Options{Tol: 1e-10, MaxIter: interval + 1},
			Resilience{Store: store, Interval: interval})
	})
	slot, iter := store.Latest()
	if iter != interval {
		t.Fatalf("Latest = (%d,%d), want a checkpoint at iteration %d", slot, iter, interval)
	}
	// Corrupt the stored residual on every rank.
	for r := 0; r < np; r++ {
		for i := range store.slots[slot].r[r] {
			store.slots[slot].r[r][i] += 0.5
		}
	}

	machine(np).Run(resilientFn(A, b, d, store, interval, &sol, &st, &solveErr))
	if solveErr != nil {
		t.Fatalf("CGResilient: %v", solveErr)
	}
	if st.Replacements != 1 {
		t.Errorf("replacements = %d, want 1 (corrupted checkpoint)", st.Replacements)
	}
	if !st.Converged {
		t.Fatalf("did not converge after residual replacement: %v", st)
	}
	// Converged means the recurrence residual passed the tolerance;
	// double-check against an explicitly computed residual.
	if rr := relResidual(A, sol, b); rr > 1e-9 {
		t.Errorf("true relative residual %.3e after replacement, want <= 1e-9", rr)
	}
}
