package core

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// The satellite property test: overlap disabled must be CG exactly —
// same bits in x, same iteration count, same round count — at
// np ∈ {1, 2, 4, 8}.
func TestCGPipelinedOverlapDisabledBitIdenticalToCG(t *testing.T) {
	for name, A := range sstepSuite() {
		n := A.NRows
		b := sparse.RandomVector(n, 3)
		for _, np := range []int{1, 2, 4, 8} {
			d := dist.NewBlock(n, np)
			machine(np).Run(func(p *comm.Proc) {
				op := spmv.NewRowBlockCSRGhost(p, A, d)
				bv := darray.New(p, d)
				bv.SetGlobal(func(g int) float64 { return b[g] })
				x1 := darray.New(p, d)
				x2 := darray.New(p, d)
				st1, err1 := CG(p, op, bv, x1, Options{Tol: 1e-10})
				st2, err2 := CGPipelined(p, op, bv, x2, Options{Tol: 1e-10}, false)
				if err1 != nil || err2 != nil {
					t.Errorf("%s np=%d: errors %v %v", name, np, err1, err2)
					return
				}
				if st1.Iterations != st2.Iterations || st1.Reductions != st2.Reductions {
					t.Errorf("%s np=%d: CG %d iters/%d rounds, CGPipelined(off) %d/%d",
						name, np, st1.Iterations, st1.Reductions, st2.Iterations, st2.Reductions)
				}
				if st2.Pipelined {
					t.Errorf("%s: overlap-disabled run reports Pipelined", name)
				}
				l1, l2 := x1.Local(), x2.Local()
				for i := range l1 {
					if l1[i] != l2[i] {
						t.Fatalf("%s np=%d rank=%d: x differs at local %d: %v vs %v",
							name, np, p.Rank(), i, l1[i], l2[i])
					}
				}
			})
		}
	}
}

// With overlap on, the Ghysels–Vanroose trajectory differs from CG's
// in floating point (like CGFused's does) but must converge to the
// same tolerance on the whole suite, with exactly one reduction round
// per iteration: setup merges once, every round merges once including
// the round that detects convergence, and the confirmation adds one —
// Reductions = Iterations + 3 on a clean converged solve.
func TestCGPipelinedConvergesAcrossSuite(t *testing.T) {
	for name, A := range sstepSuite() {
		n := A.NRows
		b := sparse.RandomVector(n, 5)
		var cgIters int
		for _, np := range []int{1, 2, 4, 8} {
			d := dist.NewBlock(n, np)
			var st Stats
			var sol []float64
			machine(np).Run(func(p *comm.Proc) {
				op := spmv.NewRowBlockCSRGhost(p, A, d)
				bv := darray.New(p, d)
				bv.SetGlobal(func(g int) float64 { return b[g] })
				xv := darray.New(p, d)
				got, err := CGPipelined(p, op, bv, xv, Options{Tol: 1e-10, MaxIter: 6 * n}, true)
				if err != nil {
					t.Errorf("%s np=%d: %v", name, np, err)
					return
				}
				full := xv.Gather()
				if p.Rank() == 0 {
					st, sol = got, full
				}
			})
			if t.Failed() {
				return
			}
			if !st.Converged {
				t.Fatalf("%s np=%d: not converged: %v", name, np, st)
			}
			if !st.Pipelined {
				t.Errorf("%s np=%d: Pipelined flag not set", name, np)
			}
			if rr := relResidual(A, sol, b); rr > 1e-7 {
				t.Errorf("%s np=%d: residual %g", name, np, rr)
			}
			if st.Replacements == 0 && st.Reductions != st.Iterations+3 {
				t.Errorf("%s np=%d: %d rounds for %d iterations, want iterations+3",
					name, np, st.Reductions, st.Iterations)
			}
			if np == 1 {
				cgIters = st.Iterations
			}
			if cgIters > 0 && st.Iterations > 2*cgIters+20 {
				t.Errorf("%s np=%d: %d iterations vs np=1's %d — trajectory unstable",
					name, np, st.Iterations, cgIters)
			}
		}
	}
}

// The modeled-overlap claim at solver level: with np > 1 the pipelined
// solve must actually hide reduction time behind its mat-vecs (hidden
// > 0 on some rank), and hidden + exposed must account for the full
// blocking cost of every waited-on round.
func TestCGPipelinedOverlapHidesReduction(t *testing.T) {
	A := sparse.Banded(256, 4)
	n := A.NRows
	b := sparse.RandomVector(n, 7)
	const np = 4
	d := dist.NewBlock(n, np)
	rs := machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSRGhost(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		xv := darray.New(p, d)
		if _, err := CGPipelined(p, op, bv, xv, Options{Tol: 1e-10}, true); err != nil {
			t.Errorf("%v", err)
		}
	})
	hidden, exposed := rs.ReduceOverlap()
	if hidden <= 0 {
		t.Errorf("hidden reduction time %g, want > 0 — the mat-vec hid nothing", hidden)
	}
	if exposed < 0 {
		t.Errorf("exposed reduction time %g < 0", exposed)
	}
}

// The consistent-but-wrong regime, mirroring CGSStep's stagnation
// test: on a spectrum spanning 8 decades with an unreachable tolerance
// the γ recurrence stagnates; the guard must force one residual
// replacement and the plain-CG fallback, and the returned iterate must
// be no worse than the zero initial guess.
func TestCGPipelinedStagnationGuardFallsBack(t *testing.T) {
	n := 64
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = math.Pow(10, 8*float64(i)/float64(n-1)) // 1 .. 1e8
	}
	A := sparse.DiagWithEigenvalues(eigs)
	b := sparse.RandomVector(n, 13)
	const np = 4
	d := dist.NewBlock(n, np)
	var st Stats
	var sol []float64
	machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSRGhost(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		xv := darray.New(p, d)
		got, err := CGPipelined(p, op, bv, xv, Options{Tol: 1e-14, MaxIter: 10 * n}, true)
		if err != nil {
			t.Fatalf("%v", err)
		}
		full := xv.Gather()
		if p.Rank() == 0 {
			st, sol = got, full
		}
	})
	if st.Replacements == 0 {
		t.Fatalf("guard never tripped on an 8-decade spectrum at tol 1e-14: %+v", st)
	}
	if rr := relResidual(A, sol, b); rr > 2 {
		t.Errorf("returned iterate diverged: relres %g", rr)
	}
}

// The zero-alloc satellite: with a Workspace and the handle freelist,
// steady-state pipelined iterations stay off the heap. Measured as a
// delta — a 40-iteration solve must allocate no more than a
// 10-iteration solve — so per-solve constants cancel.
func TestCGPipelinedSteadyStateIterationsNoAllocs(t *testing.T) {
	A := sparse.Laplace2D(16, 16)
	n := A.NRows
	const np = 4
	d := dist.NewBlock(n, np)
	b := sparse.RandomVector(n, 7)

	allocsAt := func(iters int) float64 {
		var allocs float64
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv := darray.New(p, d)
			ws := NewWorkspace()
			// Tol below reach so the solve always runs MaxIter
			// iterations; one warm-up solve fills the pools.
			opt := Options{Tol: 1e-300, MaxIter: iters, Work: ws}
			run := func() {
				xv.Fill(0)
				if _, err := CGPipelined(p, op, bv, xv, opt, true); err != nil {
					t.Errorf("%v", err)
				}
			}
			run()
			if p.Rank() == 0 {
				allocs = testing.AllocsPerRun(2, run)
			} else {
				for i := 0; i < 3; i++ {
					run()
				}
			}
		})
		return allocs
	}
	short, long := allocsAt(10), allocsAt(40)
	if long > short+0.5 {
		t.Errorf("40-iteration solve allocates %.1f, 10-iteration %.1f — iterations are hitting the heap (%.2f allocs/iter)",
			long, short, (long-short)/30)
	}
}
