package core

import (
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
)

// Workspace is a per-processor pool of solver temporaries. The CG-class
// solvers need a handful of aligned scratch vectors per solve; without
// a workspace each solve allocates them fresh, which for repeated
// solves (benchmark sweeps, time-stepping, restarted outer methods)
// keeps the heap busy for buffers whose shape never changes. Passing
// the same Workspace via Options.Work lets every solve on this
// processor reuse the previous solve's vectors, making steady-state
// iterations allocation-free together with the pooled collectives and
// the operators' reusable gather buffers.
//
// A Workspace belongs to one processor (it holds that processor's
// vector blocks) and must not be shared across ranks. It may be reused
// across machines and problem sizes: vectors whose owner or descriptor
// no longer match are dropped and rebuilt.
type Workspace struct {
	vecs []*darray.Vector
	next int
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin starts a solve: subsequent take calls hand out the pooled
// vectors in order. Nil-safe — a nil workspace is returned as nil and
// take then falls back to fresh allocation.
func (w *Workspace) begin() *Workspace {
	if w != nil {
		w.next = 0
	}
	return w
}

// take returns a zeroed vector aligned with proto, reusing a pooled one
// when available. Zeroing matches darray.NewAligned's fresh-allocation
// semantics and charges no modeled time (like the allocation it
// replaces, it is bookkeeping, not solver arithmetic).
func (w *Workspace) take(proto *darray.Vector) *darray.Vector {
	if w == nil {
		return darray.NewAligned(proto)
	}
	if w.next < len(w.vecs) {
		v := w.vecs[w.next]
		if v.Proc() == proto.Proc() && dist.Same(v.Dist(), proto.Dist()) {
			w.next++
			v.Fill(0)
			return v
		}
		// Shape changed: everything from here on belongs to the old
		// solve shape, drop it and rebuild below.
		w.vecs = w.vecs[:w.next]
	}
	v := darray.NewAligned(proto)
	w.vecs = append(w.vecs, v)
	w.next++
	return v
}
