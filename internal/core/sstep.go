// The s-step (communication-avoiding) conjugate gradient. CGFused got
// CG down to one allreduce round per iteration; the latency term of the
// paper's §4 cost model still charges that round every iteration. The
// s-step reformulation (Chronopoulos/Gear; the basis treatment follows
// Demmel/Hoemmen/Mohiyuddin and the CA-Krylov literature cited in
// PAPERS.md) runs s iterations per ONE round: a matrix-powers kernel
// produces the monomial basis block
//
//	B = [p, Ap, …, Aˢp, r, Ar, …, Aˢ⁻¹r]   (m = 2s+1 columns)
//
// with a single widened ghost exchange (spmv.PowersOperator), one
// batched allreduce merges the Gram matrix G = BᵀB, and the s
// iterations then run entirely on length-m coefficient vectors: every
// inner product CG would merge is the quadratic form aᵀGb of merged
// data, and multiplying by A is the exact shift of basis coefficients
// (degree induction keeps all shifts inside the block, so no top-power
// coefficient is ever lost). At block end the iterates are recovered by
// local gemvs x += B·xc, r = B·rc, p = B·pc.
//
// The monomial basis is numerically the worst choice (its conditioning
// grows like the s-th power of A's spectral radius) but the simplest,
// so stability is guarded rather than assumed, reusing CGFused's
// refresh idea: G[r,r] is the exact merged ‖r‖² of the block's seed
// residual, so every block start compares it against the rho the
// coefficient recurrence carried over — for free, inside the Gram
// round. If they disagree beyond driftTol, or an inner step produces a
// non-SPD-shaped scalar (p·Ap ≤ 0, ‖r‖² < 0, NaN), the solver performs
// one explicit residual replacement (r = b − A·x) and permanently falls
// back to plain CG from the current x — which on an SPD system always
// converges, so the guard can degrade performance but never the answer.
package core

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// driftTol bounds the relative disagreement between the recurrence rho
// and the exact merged ‖r‖² the Gram round delivers before the
// stability guard abandons s-stepping. The scaled basis keeps healthy
// blocks a decade or more below this (~2e-4 at s=8 on the banded
// suite); genuinely degrading solves shoot past it.
const driftTol = 1e-3

// CGSStep solves A·x = b with s-step CG: one batched Gram allreduce —
// and, when A implements spmv.PowersOperator, one widened ghost
// exchange — per s iterations. s <= 1 delegates to CG (bit-identical
// by construction); s > 1 changes the floating-point trajectory like
// CGFused does, converges to the same tolerance, and typically spends
// a few extra iterations per guard event (experiment E23 maps the
// frontier). Any Operator works: without the powers contract the basis
// falls back to 2s-1 plain applies, still merging one round per s
// iterations.
func CGSStep(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options, s int) (Stats, error) {
	if s <= 1 {
		st, err := CG(p, A, b, x, opt)
		st.SStep = 1
		return st, err
	}
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	st.SStep = s
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv := w.take(b)
	pv.CopyFrom(r)
	rho := rnsq

	// Basis storage: V_j = A^j·p lives in bl[j] (V_0 = p itself), W_j =
	// A^j·r in bl[s+1+j] (W_0 = r itself). All taken from the workspace
	// once; the block loop allocates nothing.
	m := 2*s + 1
	AP := make([]*darray.Vector, s)
	AR := make([]*darray.Vector, s-1)
	for j := range AP {
		AP[j] = w.take(b)
	}
	for j := range AR {
		AR[j] = w.take(b)
	}
	scratchR := w.take(b)
	scratchP := w.take(b)
	seeds := []*darray.Vector{pv, r}
	outs := [][]*darray.Vector{AP, AR}
	bl := make([][]float64, m)
	bl[0] = pv.Local()
	for j := 0; j < s; j++ {
		bl[1+j] = AP[j].Local()
	}
	bl[s+1] = r.Local()
	for j := 0; j < s-1; j++ {
		bl[s+2+j] = AR[j].Local()
	}
	nloc := len(bl[0])

	pow, _ := A.(spmv.PowersOperator)
	usePowers := pow != nil && pow.MaxDepth() >= s

	// The packed upper triangle of G and a full m×m index into it. The
	// inner loop actually runs on the diagonally scaled Ĝ = DGD with
	// D = diag(1/√G[i,i]) — column-scaling the monomial basis to unit
	// norms. The scaling is applied to merged data, so it costs no
	// communication and is identical on every rank; it is what keeps
	// s = 8 usable (unscaled, the quadratic forms mix magnitudes
	// spanning ‖A‖^(2s) and cancel to noise within a block or two).
	nG := m * (m + 1) / 2
	g := make([]float64, nG)
	gs := make([]float64, nG)
	dscale := make([]float64, m)
	gIdx := make([][]int, m)
	for i := range gIdx {
		gIdx[i] = make([]int, m)
	}
	for i, idx := 0, 0; i < m; i++ {
		for j := i; j < m; j++ {
			gIdx[i][j] = idx
			gIdx[j][i] = idx
			idx++
		}
	}
	// quad evaluates aᵀĜb from the merged, scaled triangle — the s-step
	// stand-in for an allreduced inner product (quadratic forms are
	// invariant under the basis scaling, so the values keep their
	// unscaled meaning).
	quad := func(a, c []float64) float64 {
		t := 0.0
		for i := 0; i < m; i++ {
			if a[i] == 0 {
				continue
			}
			row := gIdx[i]
			ti := 0.0
			for j := 0; j < m; j++ {
				ti += gs[row[j]] * c[j]
			}
			t += a[i] * ti
		}
		o.p.Compute(2 * m * m)
		return t
	}

	// Coefficient vectors (length m) and the previous-step snapshots the
	// anomaly rollback restores.
	xc := make([]float64, m)
	rc := make([]float64, m)
	pc := make([]float64, m)
	qc := make([]float64, m)
	xcP := make([]float64, m)
	rcP := make([]float64, m)
	pcP := make([]float64, m)

	// recover computes dst = B·(D·c) (or += when add), the local gemv
	// that materialises a scaled-space coefficient vector against the
	// unscaled stored basis.
	recover := func(c, dst []float64, add bool) {
		if !add {
			for i := range dst {
				dst[i] = 0
			}
		}
		for k := 0; k < m; k++ {
			ck := c[k] * dscale[k]
			if ck == 0 {
				continue
			}
			col := bl[k]
			for i := range dst {
				dst[i] += ck * col[i]
			}
		}
		o.p.Compute(2 * m * nloc)
	}

	// The drift comparison catches inconsistent arithmetic; these two
	// catch the consistent-but-wrong regime (a degraded basis can carry
	// a recurrence that agrees with its own Gram while the true residual
	// goes nowhere): no new best ‖r‖² for stagBlocks whole blocks, or a
	// blow-up far past the best, both abandon s-stepping.
	const stagBlocks = 8
	const growthTol = 1e4
	bestRho := rho
	sinceBest := 0

	fallback := false
	for st.Iterations < opt.MaxIter && !fallback {
		// One widened exchange brings both chains' halos; one batched
		// round merges the whole Gram triangle.
		if usePowers {
			pow.ApplyPowersBlock(seeds, outs)
			st.MatVecs += 2*s - 1
		} else {
			cur := pv
			for j := 0; j < s; j++ {
				o.apply(A, cur, AP[j])
				cur = AP[j]
			}
			cur = r
			for j := 0; j < s-1; j++ {
				o.apply(A, cur, AR[j])
				cur = AR[j]
			}
		}
		for i, idx := 0, 0; i < m; i++ {
			for j := i; j < m; j++ {
				bi, bj := bl[i], bl[j]
				t := 0.0
				for k := range bi {
					t += bi[k] * bj[k]
				}
				g[idx] = t
				idx++
			}
		}
		st.DotProducts += nG
		o.p.Compute(2 * nloc * nG)
		o.merge(g)

		// The free stability check: G[W0,W0] is the exact merged ‖r‖²;
		// rho is what the previous block's recurrence predicted for it.
		grr := g[gIdx[s+1][s+1]]
		if !(grr > 0) || math.Abs(grr-rho) > driftTol*grr {
			fallback = true
			break
		}
		rho = grr

		// Column-scale: D = diag(1/√G[i,i]), Ĝ = DGD. Merged data only,
		// so every rank computes the same scaling with no extra round.
		for i := 0; i < m; i++ {
			if gii := g[gIdx[i][i]]; gii > 0 {
				dscale[i] = 1 / math.Sqrt(gii)
			} else {
				dscale[i] = 1
			}
		}
		for i, idx := 0, 0; i < m; i++ {
			for j := i; j < m; j++ {
				gs[idx] = g[idx] * dscale[i] * dscale[j]
				idx++
			}
		}
		o.p.Compute(3 * nG)

		// Coefficients live in scaled space: v = B·(D·c), so the seeds
		// p = B·e_V0 and r = B·e_W0 start at 1/d.
		for i := range xc {
			xc[i], rc[i], pc[i] = 0, 0, 0
		}
		pc[0] = 1 / dscale[0]
		rc[s+1] = 1 / dscale[s+1]

		claimed := false
		rhoPrev := rho
		for i := 0; i < s && st.Iterations < opt.MaxIter; i++ {
			copy(xcP, xc)
			copy(rcP, rc)
			copy(pcP, pc)
			rhoPrev = rho
			st.Iterations++
			// q = A·p is the coefficient shift V_j→V_{j+1}, W_j→W_{j+1}
			// (with the scaling ratio d_j/d_{j+1}, since A·B̂_j =
			// (d_j/d_{j+1})·B̂_{j+1}); the degree induction (deg_V(p) ≤ i,
			// deg_W(p) ≤ i-1 entering step i+1) keeps it inside B.
			for j := range qc {
				qc[j] = 0
			}
			for j := 0; j < s; j++ {
				qc[j+1] = pc[j] * dscale[j] / dscale[j+1]
			}
			for j := 0; j < s-1; j++ {
				qc[s+2+j] = pc[s+1+j] * dscale[s+1+j] / dscale[s+2+j]
			}
			pq := quad(pc, qc)
			st.DotProducts++
			if math.IsNaN(pq) || pq <= 0 {
				st.Iterations--
				copy(xc, xcP)
				copy(rc, rcP)
				copy(pc, pcP)
				rho = rhoPrev
				fallback = true
				break
			}
			alpha := rho / pq
			for j := range xc {
				xc[j] += alpha * pc[j]
				rc[j] -= alpha * qc[j]
			}
			o.p.Compute(4 * m)
			st.AXPYs += 2
			rhoNew := quad(rc, rc)
			st.DotProducts++
			if math.IsNaN(rhoNew) || rhoNew < 0 {
				st.Iterations--
				copy(xc, xcP)
				copy(rc, rcP)
				copy(pc, pcP)
				rho = rhoPrev
				fallback = true
				break
			}
			rho0 := rho
			rho = rhoNew
			rel := math.Sqrt(rhoNew) / bn
			o.record(rel, opt)
			if rel <= opt.Tol {
				claimed = true
				break
			}
			beta := rho / rho0
			for j := range pc {
				pc[j] = rc[j] + beta*pc[j]
			}
			o.p.Compute(2 * m)
			st.AXPYs++
		}

		// Recover the iterates: x += B·xc, and r/p through scratch (they
		// are themselves basis columns W0/V0).
		recover(xc, x.Local(), true)
		recover(rc, scratchR.Local(), false)
		recover(pc, scratchP.Local(), false)
		copy(r.Local(), scratchR.Local())
		copy(pv.Local(), scratchP.Local())
		st.AXPYs += 3

		if claimed {
			// The recurrence says converged: confirm with an explicit
			// merged norm, like CGFused (one extra round, paid only near
			// the end). Unconfirmed claims are drift — guard trips.
			rnsq = o.mergeScalar(r.NormSqLocal())
			st.DotProducts++
			rn = math.Sqrt(rnsq)
			if rn/bn <= opt.Tol {
				st.Converged = true
				st.Residual = rn / bn
				return st, nil
			}
			fallback = true
		}

		if rho < bestRho {
			bestRho = rho
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= stagBlocks || rho > growthTol*bestRho {
				fallback = true
			}
		}
	}

	if !fallback {
		st.Residual = math.Sqrt(math.Max(rho, 0)) / bn
		return st, nil
	}

	// The guard tripped: one explicit residual replacement, then plain
	// CG (the CG loop verbatim) from the current x. On an SPD system
	// this always converges — the fallback can cost iterations, never
	// the answer.
	st.Replacements++
	o.apply(A, x, r)
	r.Scale(-1)
	o.axpy(r, 1, b)
	rnsq = o.mergeScalar(r.NormSqLocal())
	st.DotProducts++
	rn = math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv.CopyFrom(r)
	rho = rnsq
	q := scratchR
	for st.Iterations < opt.MaxIter {
		st.Iterations++
		pq := o.mergeScalar(o.applyDotLocal(A, pv, q))
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, st.Iterations)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		rnsq = o.mergeScalar(o.axpyNormSqLocal(r, -alpha, q))
		rn = math.Sqrt(rnsq)
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = rnsq
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, st.Iterations)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
	}
	st.Residual = rn / bn
	return st, nil
}
