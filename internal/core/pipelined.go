// Pipelined (communication-hiding) conjugate gradient. CGSStep attacks
// the §4 latency term by batching rounds — s iterations per allreduce;
// this file attacks it from the other side by *overlapping*: one
// allreduce per iteration, started nonblocking and hidden behind the
// iteration's matrix-vector product. The rearrangement is
// Ghysels–Vanroose: carry w = A·r alongside the usual vectors, merge
// both scalars an iteration needs — γ = (r,r) and δ = (w,r) — in one
// comm.IallreduceScalars round, compute q = A·w while the round is in
// flight, and recover α and β locally from the recurrence
//
//	β = γ/γ_old,   α = γ / (δ - β·γ/α_old)
//
// once the Wait completes (for free when the mat-vec covered the
// reduction). Auxiliary recurrences z = q + βz, s = w + βs keep A·p and
// A·s available without further applies, so each iteration is still one
// operator application.
//
// Like CGFused and CGSStep, the recurrence changes the floating-point
// trajectory and can drift from the true residual, so stability is
// priced rather than trusted: convergence claims are confirmed against
// an explicitly recomputed residual (a residual replacement at the
// claim), and any anomalous scalar (γ ≤ 0, δ ≤ 0, NaN, a non-positive
// α denominator, stagnation or blow-up of γ) triggers one explicit
// replacement r = b − A·x followed by a permanent fall back to plain
// CG from the current x — which on an SPD system always converges, so
// the guard can cost time, never the answer.
package core

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// pipeStagIters and pipeGrowthTol bound the consistent-but-wrong
// regime, mirroring CGSStep's block guard at iteration granularity: no
// new best ‖r‖² for pipeStagIters iterations, or growth far past the
// best, abandons the pipelined recurrence.
const (
	pipeStagIters = 50
	pipeGrowthTol = 1e4
)

// imerge starts ONE nonblocking batched allreduce of the local partials
// in d — the pipelined solver's single round per iteration. It counts a
// reduction round like merge; the caller overlaps compute against the
// returned handle and settles the modeled cost with Wait.
func (o ops) imerge(d []float64) *comm.ReduceHandle {
	o.s.Reductions++
	return o.p.IallreduceScalars(d, comm.OpSum)
}

// CGPipelined solves A·x = b with the Ghysels–Vanroose pipelined
// recurrence: one nonblocking allreduce per iteration whose modeled
// cost hides behind the iteration's mat-vec (Wait charges only the
// exposed remainder — see comm.IallreduceScalars). overlap=false
// delegates to CG, bit-identically, the same way CGSStep delegates at
// s<=1; overlap=true changes the floating-point trajectory like
// CGFused does, converges to the same tolerance, and falls back to
// plain CG after one residual replacement if the drift guard trips.
// Any spmv.Operator works, assembled or matrix-free.
func CGPipelined(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options, overlap bool) (Stats, error) {
	if !overlap {
		return CG(p, A, b, x, opt)
	}
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	st.Pipelined = true
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	wv := w.take(b) // w = A·r, the pipelined auxiliary residual image
	o.apply(A, r, wv)
	pv := w.take(b) // search direction
	sv := w.take(b) // s = A·p
	zv := w.take(b) // z = A·s
	qv := w.take(b) // q = A·w, computed inside the overlap window

	var d [2]float64
	var gamma, gammaOld, alphaOld float64
	bestGamma := rnsq
	sinceBest := 0
	first := true
	claimed := false
	fallback := false

	for {
		// The round: {γ = r·r, δ = w·r} start one nonblocking merge;
		// q = A·w runs while it is in flight; Wait charges only what
		// the mat-vec did not cover.
		d[0] = o.dotLocal(r, r)
		d[1] = o.dotLocal(wv, r)
		h := o.imerge(d[:])
		o.apply(A, wv, qv)
		h.Wait()
		gamma = d[0]
		delta := d[1]
		if math.IsNaN(gamma) || math.IsNaN(delta) || gamma <= 0 || delta <= 0 {
			fallback = true
			break
		}
		if !first {
			// γ is the exact merged ‖r‖² of the recurrence residual:
			// the stopping test for the previous update, free inside
			// the round (same quality as plain CG's test).
			rel := math.Sqrt(gamma) / bn
			o.record(rel, opt)
			if rel <= opt.Tol {
				claimed = true
				break
			}
			if gamma < bestGamma {
				bestGamma = gamma
				sinceBest = 0
			} else {
				sinceBest++
				if sinceBest >= pipeStagIters || gamma > pipeGrowthTol*bestGamma {
					fallback = true
					break
				}
			}
		}
		if st.Iterations >= opt.MaxIter {
			break
		}
		st.Iterations++
		var alpha, beta float64
		if first {
			first = false
			alpha = gamma / delta
			zv.CopyFrom(qv)
			sv.CopyFrom(wv)
			pv.CopyFrom(r)
		} else {
			beta = gamma / gammaOld
			den := delta - beta*gamma/alphaOld
			if math.IsNaN(den) || den <= 0 {
				fallback = true
				break
			}
			alpha = gamma / den
			o.aypx(zv, beta, qv) // z = q + β·z   (= A·s)
			o.aypx(sv, beta, wv) // s = w + β·s   (= A·p)
			o.aypx(pv, beta, r)  // p = r + β·p
		}
		o.axpy(x, alpha, pv)   // x += α·p
		o.axpy(r, -alpha, sv)  // r -= α·s
		o.axpy(wv, -alpha, zv) // w -= α·z   (keeps w = A·r)
		gammaOld, alphaOld = gamma, alpha
	}

	if claimed {
		// The recurrence claims convergence: confirm against the true
		// residual — an explicit replacement at the claim, like
		// CGSStep's end-of-block confirmation. A confirmed claim
		// returns; an unconfirmed one is drift and falls back.
		o.apply(A, x, r)
		r.Scale(-1)
		o.axpy(r, 1, b)
		rnsq = o.mergeScalar(r.NormSqLocal())
		st.DotProducts++
		rn = math.Sqrt(rnsq)
		if rn/bn <= opt.Tol {
			st.Converged = true
			st.Residual = rn / bn
			return st, nil
		}
		fallback = true
	}
	if !fallback {
		// MaxIter exhausted; γ carries the final iterate's ‖r‖².
		st.Residual = math.Sqrt(gamma) / bn
		return st, nil
	}

	// The guard tripped: one explicit residual replacement, then plain
	// CG (the CG loop verbatim) from the current x — stability priced,
	// never the answer.
	st.Replacements++
	o.apply(A, x, r)
	r.Scale(-1)
	o.axpy(r, 1, b)
	rnsq = o.mergeScalar(r.NormSqLocal())
	st.DotProducts++
	rn = math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}
	pv.CopyFrom(r)
	rho := rnsq
	q := qv
	for st.Iterations < opt.MaxIter {
		st.Iterations++
		pq := o.mergeScalar(o.applyDotLocal(A, pv, q))
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, st.Iterations)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		rnsq = o.mergeScalar(o.axpyNormSqLocal(r, -alpha, q))
		rn = math.Sqrt(rnsq)
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = rnsq
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, st.Iterations)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
	}
	st.Residual = rn / bn
	return st, nil
}
