package core

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// sstepSuite is the E19 matrix suite the acceptance criteria reference:
// the banded operator E19 sweeps, plus the structured and random SPD
// generators every solver test exercises.
func sstepSuite() map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"banded":    sparse.Banded(96, 4),
		"laplace2d": sparse.Laplace2D(10, 10),
		"randspd":   sparse.RandomSPD(80, 6, 7),
	}
}

// The satellite property test: s=1 must be CG exactly — same bits in
// x, same iteration count, same round count.
func TestCGSStepS1BitIdenticalToCG(t *testing.T) {
	for name, A := range sstepSuite() {
		n := A.NRows
		b := sparse.RandomVector(n, 3)
		for _, np := range []int{1, 2, 4} {
			d := dist.NewBlock(n, np)
			machine(np).Run(func(p *comm.Proc) {
				op := spmv.NewRowBlockCSRGhost(p, A, d)
				bv := darray.New(p, d)
				bv.SetGlobal(func(g int) float64 { return b[g] })
				x1 := darray.New(p, d)
				x2 := darray.New(p, d)
				st1, err1 := CG(p, op, bv, x1, Options{Tol: 1e-10})
				st2, err2 := CGSStep(p, op, bv, x2, Options{Tol: 1e-10}, 1)
				if err1 != nil || err2 != nil {
					t.Errorf("%s np=%d: errors %v %v", name, np, err1, err2)
					return
				}
				if st1.Iterations != st2.Iterations || st1.Reductions != st2.Reductions {
					t.Errorf("%s np=%d: CG %d iters/%d rounds, CGSStep(1) %d/%d",
						name, np, st1.Iterations, st1.Reductions, st2.Iterations, st2.Reductions)
				}
				if st2.SStep != 1 {
					t.Errorf("%s: SStep = %d, want 1", name, st2.SStep)
				}
				l1, l2 := x1.Local(), x2.Local()
				for i := range l1 {
					if l1[i] != l2[i] {
						t.Fatalf("%s np=%d rank=%d: x differs at local %d: %v vs %v",
							name, np, p.Rank(), i, l1[i], l2[i])
					}
				}
			})
		}
	}
}

// Every s must converge to the same tolerance on the full suite, on
// both kernel paths (matrix-powers and generic), and the guard must
// never let a solve diverge.
//
// Expected iteration deltas (documented per the satellite): the
// monomial s-step trajectory is not bit-identical to CG's for s > 1,
// so counts drift a few iterations either way; when the drift guard
// trips (large s on the random matrix) the solve pays one residual
// replacement plus a plain-CG tail, which can roughly double the
// count. The assertion below bounds the delta at 2·CG + 3s + guard
// slack — generous, but it is convergence-to-tolerance that is the
// contract, not the count.
func TestCGSStepConvergesAcrossS(t *testing.T) {
	for name, A := range sstepSuite() {
		n := A.NRows
		b := sparse.RandomVector(n, 5)
		var cgIters int
		for _, np := range []int{1, 4} {
			d := dist.NewBlock(n, np)
			for _, s := range []int{1, 2, 4, 8} {
				for _, powers := range []bool{true, false} {
					var st Stats
					var sol []float64
					machine(np).Run(func(p *comm.Proc) {
						var op spmv.Operator
						if powers {
							op = spmv.NewRowBlockCSRPowers(p, A, d, s)
						} else {
							op = spmv.NewRowBlockCSR(p, A, d)
						}
						bv := darray.New(p, d)
						bv.SetGlobal(func(g int) float64 { return b[g] })
						xv := darray.New(p, d)
						got, err := CGSStep(p, op, bv, xv, Options{Tol: 1e-10, MaxIter: 6 * n}, s)
						if err != nil {
							t.Errorf("%s np=%d s=%d powers=%v: %v", name, np, s, powers, err)
							return
						}
						full := xv.Gather()
						if p.Rank() == 0 {
							st, sol = got, full
						}
					})
					if t.Failed() {
						return
					}
					if !st.Converged {
						t.Fatalf("%s np=%d s=%d powers=%v: not converged: %v", name, np, s, powers, st)
					}
					if rr := relResidual(A, sol, b); rr > 1e-7 {
						t.Errorf("%s np=%d s=%d powers=%v: residual %g", name, np, s, powers, rr)
					}
					if s == 1 && np == 1 && powers {
						cgIters = st.Iterations
					}
					if cgIters > 0 && st.Iterations > 2*cgIters+3*s+10 {
						t.Errorf("%s np=%d s=%d powers=%v: %d iterations vs CG's %d — delta beyond the documented bound",
							name, np, s, powers, st.Iterations, cgIters)
					}
				}
			}
		}
	}
}

// The tentpole claim: allreduce rounds per iteration ≈ 1/s. Setup
// contributes one round, each block one, and the final convergence
// confirmation one more, so a clean solve merges
// 2 + ceil(iterations/s) rounds in total.
func TestCGSStepRoundsPerIteration(t *testing.T) {
	A := sparse.Banded(256, 4)
	n := A.NRows
	b := sparse.RandomVector(n, 11)
	const np = 4
	d := dist.NewBlock(n, np)
	for _, s := range []int{2, 4, 8} {
		var st Stats
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSRPowers(p, A, d, s)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			xv := darray.New(p, d)
			got, err := CGSStep(p, op, bv, xv, Options{Tol: 1e-10}, s)
			if err != nil {
				t.Fatalf("s=%d: %v", s, err)
			}
			if p.Rank() == 0 {
				st = got
			}
		})
		if !st.Converged || st.Replacements != 0 {
			t.Fatalf("s=%d: want clean convergence, got %+v", s, st)
		}
		blocks := (st.Iterations + s - 1) / s
		want := 2 + blocks
		if st.Reductions != want {
			t.Errorf("s=%d: %d rounds for %d iterations (%d blocks), want %d",
				s, st.Reductions, st.Iterations, blocks, want)
		}
		// The headline ratio: rounds/iteration must sit near 1/s, far
		// below plain CG's 2.
		ratio := float64(st.Reductions) / float64(st.Iterations)
		if ratio > 1.5/float64(s) {
			t.Errorf("s=%d: rounds/iter = %.3f, want ≈ %.3f", s, ratio, 1/float64(s))
		}
	}
}

// Satellite guard: the batched Gram allreduce — an s=8 block merges
// m(m+1)/2 = 153 partials in one round — must allocate nothing in
// steady state, like the scalar merges it replaces.
func TestGramMergeSteadyStateNoAllocs(t *testing.T) {
	const s = 8
	const m = 2*s + 1
	const nG = m * (m + 1) / 2
	const runs = 7
	for _, np := range []int{4, 8} {
		var allocs float64
		machine(np).Run(func(p *comm.Proc) {
			g := make([]float64, nG)
			fill := func() {
				for i := range g {
					g[i] = float64(i%13) + float64(p.Rank())
				}
			}
			fill()
			p.AllreduceScalars(g, comm.OpSum) // warm the pools
			if p.Rank() == 0 {
				allocs = testing.AllocsPerRun(runs, func() {
					fill()
					p.AllreduceScalars(g, comm.OpSum)
				})
			} else {
				for i := 0; i < runs+1; i++ {
					fill()
					p.AllreduceScalars(g, comm.OpSum)
				}
			}
		})
		if allocs != 0 {
			t.Errorf("np=%d: Gram-sized AllreduceScalars allocated %.1f per round, want 0", np, allocs)
		}
	}
}

// The stability guard: on a spectrum spanning five decades the scaled
// s=8 recurrence drifts past driftTol once the residual has fallen far
// — the guard must trip (residual replacement, Replacements=1), the
// plain-CG tail must finish the solve, and the answer must meet the
// tolerance. "The fallback guard never diverges."
func TestCGSStepGuardFallsBackAndConverges(t *testing.T) {
	n := 96
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = math.Pow(10, 5*float64(i)/float64(n-1)) // 1 .. 1e5
	}
	A := sparse.DiagWithEigenvalues(eigs)
	b := sparse.RandomVector(n, 11)
	const np = 4
	const s = 8
	d := dist.NewBlock(n, np)
	var st Stats
	var sol []float64
	machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSRPowers(p, A, d, s)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		xv := darray.New(p, d)
		got, err := CGSStep(p, op, bv, xv, Options{Tol: 1e-10, MaxIter: 60 * n}, s)
		if err != nil {
			t.Fatalf("%v", err)
		}
		full := xv.Gather()
		if p.Rank() == 0 {
			st, sol = got, full
		}
	})
	if st.Replacements == 0 {
		t.Fatalf("s=8 on a 5-decade spectrum should trip the guard; got %+v", st)
	}
	if !st.Converged {
		t.Fatalf("guard tripped but the fallback did not converge: %+v", st)
	}
	if rr := relResidual(A, sol, b); rr > 1e-6 {
		t.Errorf("residual %g after fallback", rr)
	}
}

// The consistent-but-wrong regime: on a spectrum spanning 8 decades
// the s-step recurrence can agree with its own Gram while the true
// residual stagnates — the drift comparison alone would spin to
// MaxIter. The stagnation guard must force the fallback, and the
// returned iterate must be no worse than the zero initial guess even
// though convergence to 1e-10 is out of reach for any CG variant at
// this conditioning.
func TestCGSStepStagnationGuardNeverDiverges(t *testing.T) {
	n := 64
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = math.Pow(10, 8*float64(i)/float64(n-1)) // 1 .. 1e8
	}
	A := sparse.DiagWithEigenvalues(eigs)
	b := sparse.RandomVector(n, 13)
	const np = 4
	const s = 4
	d := dist.NewBlock(n, np)
	var st Stats
	var sol []float64
	machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSRPowers(p, A, d, s)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		xv := darray.New(p, d)
		got, err := CGSStep(p, op, bv, xv, Options{Tol: 1e-10, MaxIter: 10 * n}, s)
		if err != nil {
			t.Fatalf("%v", err)
		}
		full := xv.Gather()
		if p.Rank() == 0 {
			st, sol = got, full
		}
	})
	if st.Replacements == 0 {
		t.Fatalf("stagnation guard never tripped: %+v", st)
	}
	if rr := relResidual(A, sol, b); rr > 2 {
		t.Errorf("returned iterate diverged: relres %g", rr)
	}
}

// CGSStep must accept any Operator: without the powers contract the
// basis costs 2s-1 plain exchanges but the round structure (one Gram
// merge per s iterations) is unchanged.
func TestCGSStepGenericOperatorRounds(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	n := A.NRows
	b := sparse.RandomVector(n, 4)
	const np = 4
	const s = 4
	d := dist.NewBlock(n, np)
	var st Stats
	machine(np).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSRGhost(p, A, d) // single-level halo only
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		xv := darray.New(p, d)
		got, err := CGSStep(p, op, bv, xv, Options{Tol: 1e-10}, s)
		if err != nil {
			t.Fatalf("%v", err)
		}
		if p.Rank() == 0 {
			st = got
		}
	})
	if !st.Converged {
		t.Fatalf("not converged: %+v", st)
	}
	if ratio := float64(st.Reductions) / float64(st.Iterations); ratio > 1.5/s {
		t.Errorf("rounds/iter = %.3f on the generic path, want ≈ 1/%d", ratio, s)
	}
	if st.MatVecs < st.Iterations {
		t.Errorf("generic path must count its applies: %d matvecs for %d iterations", st.MatVecs, st.Iterations)
	}
}
