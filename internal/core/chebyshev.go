package core

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// Chebyshev is the distributed Chebyshev semi-iteration: the
// communication-minimal solver for the §4 cost model. Where every CG
// iteration pays two or three DOT_PRODUCT merges (t_s·log NP
// allreduces each), the Chebyshev recurrence needs none — its only
// communication is the matrix product plus one norm per checkEvery
// iterations for the stopping test. On machines with large t_s it
// therefore beats CG per unit of modeled time even when it needs more
// iterations (experiment E17). Spectral bounds come from a short CG
// probe (seq.Options.EstimateSpectrum) or analytic knowledge.
func Chebyshev(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, eigMin, eigMax float64, opt Options) (Stats, error) {
	if !(eigMin > 0) || !(eigMax >= eigMin) {
		return Stats{}, fmt.Errorf("core: Chebyshev needs 0 < eigMin <= eigMax, got [%g, %g]", eigMin, eigMax)
	}
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()

	r := w.take(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}

	d := (eigMax + eigMin) / 2
	cc := (eigMax - eigMin) / 2
	pv := w.take(b)
	q := w.take(b)
	var alpha, beta float64
	const checkEvery = 10

	for k := 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		if k == 1 {
			pv.CopyFrom(r)
			st.AXPYs++
			alpha = 1 / d
		} else {
			beta = (cc * alpha / 2) * (cc * alpha / 2)
			alpha = 1 / (d - beta/alpha)
			o.aypx(pv, beta, r)
		}
		o.axpy(x, alpha, pv)
		o.apply(A, pv, q)
		o.axpy(r, -alpha, q)
		if k%checkEvery == 0 || k == opt.MaxIter {
			rn = math.Sqrt(o.mergeScalar(r.NormSqLocal()))
			st.DotProducts++
			rel := rn / bn
			o.record(rel, opt)
			if rel <= opt.Tol {
				st.Converged = true
				st.Residual = rel
				return st, nil
			}
		}
	}
	rn = math.Sqrt(o.mergeScalar(r.NormSqLocal()))
	st.DotProducts++
	st.Residual = rn / bn
	if st.Residual <= opt.Tol {
		st.Converged = true
	}
	return st, nil
}
