package core

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
)

// BlockJacobi is the block-diagonal preconditioner: each processor
// factors its own diagonal block A[lo:hi, lo:hi] with a sequential
// preconditioner (IC(0) by default) and applies it locally — no
// communication at all, like point Jacobi, but far stronger because
// all intra-block coupling is captured. It is the natural way to use
// the paper's §2 preconditioning observation on the distributed
// machine: the preconditioner inherits the owner-computes alignment of
// the vectors.
type BlockJacobi struct {
	p     *comm.Proc
	local seq.Preconditioner
	count int
}

// NewBlockJacobi extracts this processor's diagonal block of A under
// the contiguous distribution d and builds the named local
// preconditioner ("ic0", "ssor", "jacobi"). Like NewJacobi, failure is
// collective: if any block fails to factor, every processor returns
// the error.
func NewBlockJacobi(p *comm.Proc, A *sparse.CSR, d dist.Contiguous, local string) (*BlockJacobi, error) {
	r := p.Rank()
	lo := d.Lo(r)
	count := d.Count(r)

	// Extract the diagonal block as a standalone CSR.
	coo := sparse.NewCOO(max(count, 1), max(count, 1))
	for i := 0; i < count; i++ {
		cols, vals := A.Row(lo + i)
		for k, j := range cols {
			if j >= lo && j < lo+count {
				coo.Add(i, j-lo, vals[k])
			}
		}
	}
	if count == 0 {
		// Degenerate empty block (an empty processor under an irregular
		// distribution): identity placeholder.
		coo.Add(0, 0, 1)
	}
	block := coo.ToCSR()

	M, err := seq.ByName(local, block)
	bad := 0.0
	if err != nil {
		bad = 1
	}
	if p.AllreduceScalar(bad, comm.OpMax) > 0 {
		return nil, fmt.Errorf("core: block-Jacobi local factorisation failed on some processor (local %q): %v", local, err)
	}
	return &BlockJacobi{p: p, local: M, count: count}, nil
}

// Apply implements Preconditioner: a purely local block solve.
func (b *BlockJacobi) Apply(r, z *darray.Vector) {
	rl, zl := r.Local(), z.Local()
	if len(rl) != b.count {
		panic(fmt.Sprintf("core: block-Jacobi block %d applied to vector block %d", b.count, len(rl)))
	}
	if b.count == 0 {
		return
	}
	b.local.Apply(rl, zl)
	// Charge roughly two flops per block nonzero; the triangular solves
	// of IC(0)/SSOR touch each stored entry once each way. We
	// approximate with 4x the block length as a lower bound when the
	// local preconditioner does not expose its nnz.
	b.p.Compute(4 * b.count)
}

// Name implements Preconditioner.
func (b *BlockJacobi) Name() string { return "block-jacobi(" + b.local.Name() + ")" }
