package core

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// GMRES solves A·x = b by restarted GMRES(m) on the distributed
// machine. The paper contrasts GMRES's "longer recurrences (which
// require greater storage)" with CG; the distributed form also shows
// its communication profile: the modified Gram-Schmidt step performs
// k inner products per Arnoldi iteration — k allreduce merges where CG
// has a constant three — which experiment E5's structure columns make
// visible.
func GMRES(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, restart int, opt Options) (Stats, error) {
	if restart < 1 {
		panic(fmt.Sprintf("core: GMRES restart %d < 1", restart))
	}
	n := A.N()
	opt = opt.withDefaults(n)
	m := restart
	if m > n {
		m = n
	}
	st := newStats(opt)
	o := ops{s: &st, p: p}

	r := darray.NewAligned(b)
	rnsq, bn := residual0(o, A, b, x, r)
	rn := math.Sqrt(rnsq)
	if rn/bn <= opt.Tol {
		st.Converged = true
		st.Residual = rn / bn
		return st, nil
	}

	// The m+1 distributed Krylov basis vectors: the storage cost the
	// paper highlights, now paid on every processor's block.
	V := make([]*darray.Vector, m+1)
	for i := range V {
		V[i] = darray.NewAligned(b)
	}
	h := make([][]float64, m+1)
	for i := range h {
		h[i] = make([]float64, m)
	}
	cs := make([]float64, m)
	sn := make([]float64, m)
	g := make([]float64, m+1)
	w := darray.NewAligned(b)

	for st.Iterations < opt.MaxIter {
		beta := r.Norm2()
		st.DotProducts++
		if beta == 0 {
			st.Converged = true
			st.Residual = 0
			return st, nil
		}
		V[0].CopyFrom(r)
		V[0].Scale(1 / beta)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < m && st.Iterations < opt.MaxIter; k++ {
			st.Iterations++
			o.apply(A, V[k], w)
			for i := 0; i <= k; i++ {
				h[i][k] = o.dot(w, V[i])
				o.axpy(w, -h[i][k], V[i])
			}
			h[k+1][k] = w.Norm2()
			st.DotProducts++
			subdiag := h[k+1][k]
			if subdiag != 0 {
				V[k+1].CopyFrom(w)
				V[k+1].Scale(1 / subdiag)
			}
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k+1][k] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k+1][k]
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			rel := math.Abs(g[k+1]) / bn
			o.record(rel, opt)
			if rel <= opt.Tol {
				k++
				break
			}
			if subdiag == 0 && math.Abs(g[k+1]) > opt.Tol*bn {
				return st, fmt.Errorf("%w: Arnoldi breakdown at iteration %d", ErrBreakdown, st.Iterations)
			}
		}

		yv := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			sum := g[i]
			for j := i + 1; j < k; j++ {
				sum -= h[i][j] * yv[j]
			}
			yv[i] = sum / h[i][i]
		}
		for j := 0; j < k; j++ {
			o.axpy(x, yv[j], V[j])
		}

		rnsq, _ = residual0(o, A, b, x, r)
		rn = math.Sqrt(rnsq)
		rel := rn / bn
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
	}
	st.Residual = rn / bn
	return st, nil
}
