package core

import (
	"math"
	"testing"
	"testing/quick"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

func machine(np int) *comm.Machine {
	return comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
}

var testNPs = []int{1, 2, 3, 4, 8}

// distSolve runs a distributed solver on A·x = b and returns the
// gathered solution plus the (rank-0) stats.
func distSolve(t *testing.T, np int, A *sparse.CSR,
	solve func(p *comm.Proc, op spmv.TransposeOperator, b, x *darray.Vector) (Stats, error),
	bvec []float64) ([]float64, Stats) {
	t.Helper()
	n := A.NRows
	d := dist.NewBlock(n, np)
	csc := A.ToCSC()
	var sol []float64
	var stats Stats
	machine(np).Run(func(p *comm.Proc) {
		// Row-block CSR is the paper's primary scenario; use it here.
		_ = csc
		op := spmv.NewRowBlockCSR(p, A, d)
		b := darray.New(p, d)
		x := darray.New(p, d)
		b.SetGlobal(func(g int) float64 { return bvec[g] })
		st, err := solve(p, op, b, x)
		if err != nil {
			t.Errorf("np=%d: %v", np, err)
			return
		}
		full := x.Gather()
		if p.Rank() == 0 {
			sol = full
			stats = st
		}
	})
	return sol, stats
}

func relResidual(A *sparse.CSR, x, b []float64) float64 {
	n := A.NRows
	r := make([]float64, n)
	A.MulVec(x, r)
	rn, bn := 0.0, 0.0
	for i := range r {
		rn += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

func TestDistributedCGSolves(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.RandomVector(A.NRows, 3)
	for _, np := range testNPs {
		sol, st := distSolve(t, np, A, func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
			return CG(p, op, bv, xv, Options{Tol: 1e-10})
		}, b)
		if !st.Converged {
			t.Fatalf("np=%d: not converged: %v", np, st)
		}
		if rr := relResidual(A, sol, b); rr > 1e-8 {
			t.Errorf("np=%d: residual %g", np, rr)
		}
	}
}

// The solution and iteration count must not depend on the processor
// count (same arithmetic, just distributed).
func TestCGIterationCountIndependentOfNP(t *testing.T) {
	A := sparse.RandomSPD(60, 5, 21)
	b := sparse.RandomVector(60, 8)
	var baseIters int
	var base []float64
	for i, np := range testNPs {
		sol, st := distSolve(t, np, A, func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
			return CG(p, op, bv, xv, Options{Tol: 1e-10})
		}, b)
		if i == 0 {
			baseIters, base = st.Iterations, sol
			continue
		}
		if st.Iterations != baseIters {
			t.Errorf("np=%d: %d iterations, np=1 took %d", np, st.Iterations, baseIters)
		}
		for g := range sol {
			if math.Abs(sol[g]-base[g]) > 1e-6 {
				t.Fatalf("np=%d: solution differs at %d", np, g)
				break
			}
		}
	}
}

// Distributed CG must match the sequential reference solver closely.
func TestDistributedMatchesSequential(t *testing.T) {
	A := sparse.Laplace2D(7, 9)
	b := sparse.RandomVector(A.NRows, 5)
	xs := make([]float64, A.NRows)
	seqSt, err := seq.CG(A, b, xs, seq.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	sol, st := distSolve(t, 4, A, func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
		return CG(p, op, bv, xv, Options{Tol: 1e-10})
	}, b)
	if st.Iterations != seqSt.Iterations {
		t.Errorf("distributed %d iterations, sequential %d", st.Iterations, seqSt.Iterations)
	}
	for i := range sol {
		if math.Abs(sol[i]-xs[i]) > 1e-7 {
			t.Fatalf("solutions differ at %d: %g vs %g", i, sol[i], xs[i])
		}
	}
}

func TestAllDistributedSolvers(t *testing.T) {
	A := sparse.RandomSPD(48, 5, 2)
	b := sparse.RandomVector(48, 1)
	solvers := map[string]func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error){
		"cg": func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
			return CG(p, op, bv, xv, Options{Tol: 1e-10})
		},
		"bicg": func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
			return BiCG(p, op, bv, xv, Options{Tol: 1e-10})
		},
		"cgs": func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
			return CGS(p, op, bv, xv, Options{Tol: 1e-10})
		},
		"bicgstab": func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
			return BiCGSTAB(p, op, bv, xv, Options{Tol: 1e-10})
		},
	}
	for name, solve := range solvers {
		for _, np := range []int{1, 3, 4} {
			sol, st := distSolve(t, np, A, solve, b)
			if !st.Converged {
				t.Fatalf("%s np=%d: %v", name, np, st)
			}
			if rr := relResidual(A, sol, b); rr > 1e-7 {
				t.Errorf("%s np=%d: residual %g", name, np, rr)
			}
		}
	}
}

func TestDistributedSolversOnColumnCSC(t *testing.T) {
	// Scenario 2 operator (private-merge) must give the same answers.
	A := sparse.Laplace2D(6, 6)
	csc := A.ToCSC()
	b := sparse.RandomVector(A.NRows, 9)
	for _, np := range []int{1, 2, 4} {
		d := dist.NewBlock(A.NRows, np)
		var sol []float64
		var st Stats
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewColBlockCSC(p, csc, d, spmv.ModePrivateMerge)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			s, err := CG(p, op, bv, xv, Options{Tol: 1e-10})
			if err != nil {
				t.Errorf("np=%d: %v", np, err)
				return
			}
			full := xv.Gather()
			if p.Rank() == 0 {
				sol, st = full, s
			}
		})
		if !st.Converged {
			t.Fatalf("np=%d not converged", np)
		}
		if rr := relResidual(A, sol, b); rr > 1e-8 {
			t.Errorf("np=%d residual %g", np, rr)
		}
	}
}

func TestDistributedBiCGOnNonsymmetric(t *testing.T) {
	n := 36
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1.5)
			coo.Add(i+1, i, -0.5)
		}
	}
	A := coo.ToCSR()
	b := sparse.RandomVector(n, 6)
	sol, st := distSolve(t, 4, A, func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
		return BiCG(p, op, bv, xv, Options{Tol: 1e-10})
	}, b)
	if !st.Converged {
		t.Fatalf("BiCG: %v", st)
	}
	if st.TransMatVecs == 0 {
		t.Error("BiCG should use transpose products")
	}
	if rr := relResidual(A, sol, b); rr > 1e-7 {
		t.Errorf("residual %g", rr)
	}
}

func TestDistributedPCGJacobi(t *testing.T) {
	// Badly scaled SPD system: Jacobi must reduce iterations.
	n := 64
	eigs := make([]float64, n)
	for i := range eigs {
		eigs[i] = 1 + float64(i*i)
	}
	A := sparse.DiagWithEigenvalues(eigs)
	b := sparse.Ones(n)
	var plainIters, pcgIters int
	for _, precond := range []bool{false, true} {
		d := dist.NewBlock(n, 4)
		machine(4).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			var st Stats
			var err error
			if precond {
				var M *Jacobi
				M, err = NewJacobi(p, A, d)
				if err == nil {
					st, err = PCG(p, op, M, bv, xv, Options{Tol: 1e-10, MaxIter: 10 * n})
				}
			} else {
				st, err = CG(p, op, bv, xv, Options{Tol: 1e-10, MaxIter: 10 * n})
			}
			if err != nil {
				t.Errorf("precond=%v: %v", precond, err)
				return
			}
			if !st.Converged {
				t.Errorf("precond=%v: not converged", precond)
			}
			if p.Rank() == 0 {
				if precond {
					pcgIters = st.Iterations
				} else {
					plainIters = st.Iterations
				}
			}
		})
	}
	// Jacobi on a diagonal matrix is an exact solve: 1 iteration.
	if pcgIters != 1 {
		t.Errorf("PCG(jacobi) on diagonal system took %d iterations", pcgIters)
	}
	if plainIters <= pcgIters {
		t.Errorf("plain CG %d <= PCG %d", plainIters, pcgIters)
	}
}

func TestPCGIdentityMatchesCG(t *testing.T) {
	A := sparse.Laplace1D(30)
	b := sparse.Ones(30)
	d := dist.NewBlock(30, 2)
	machine(2).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		x1 := darray.New(p, d)
		x2 := darray.New(p, d)
		st1, err1 := CG(p, op, bv, x1, Options{})
		st2, err2 := PCG(p, op, Identity{}, bv, x2, Options{})
		if err1 != nil || err2 != nil {
			t.Errorf("errors: %v %v", err1, err2)
			return
		}
		if st1.Iterations != st2.Iterations {
			t.Errorf("CG %d vs PCG(identity) %d iterations", st1.Iterations, st2.Iterations)
		}
		if (Identity{}).Name() != "none" {
			t.Error("identity name")
		}
	})
}

func TestJacobiErrors(t *testing.T) {
	coo := sparse.NewCOO(4, 4)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 2, 1)
	coo.Add(3, 3, 1)
	A := coo.ToCSR()
	d := dist.NewBlock(4, 2)
	machine(2).Run(func(p *comm.Proc) {
		if _, err := NewJacobi(p, A, d); err == nil {
			t.Error("zero diagonal accepted")
		}
	})
}

func TestStatsString(t *testing.T) {
	var st Stats
	st.Iterations = 5
	if st.String() == "" {
		t.Error("empty String()")
	}
}

func TestZeroRHSAndEarlyExit(t *testing.T) {
	A := sparse.Laplace1D(12)
	d := dist.NewBlock(12, 3)
	machine(3).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		b := darray.New(p, d) // zero rhs
		x := darray.New(p, d)
		st, err := CG(p, op, b, x, Options{})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if !st.Converged || st.Iterations != 0 {
			t.Errorf("zero rhs: %v", st)
		}
	})
}

func TestMaxIterStops(t *testing.T) {
	A := sparse.Laplace2D(12, 12)
	b := sparse.Ones(A.NRows)
	_, st := distSolve(t, 2, A, func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
		return CG(p, op, bv, xv, Options{Tol: 1e-14, MaxIter: 4})
	}, b)
	if st.Converged || st.Iterations != 4 {
		t.Errorf("MaxIter: %v", st)
	}
}

func TestHistory(t *testing.T) {
	A := sparse.Laplace1D(20)
	b := sparse.Ones(20)
	_, st := distSolve(t, 2, A, func(p *comm.Proc, op spmv.TransposeOperator, bv, xv *darray.Vector) (Stats, error) {
		return CG(p, op, bv, xv, Options{History: true})
	}, b)
	if len(st.History) != st.Iterations {
		t.Errorf("history %d != iterations %d", len(st.History), st.Iterations)
	}
}

// Property: distributed CG solves random SPD systems for random NP.
func TestDistributedCGQuick(t *testing.T) {
	f := func(seed int64, nRaw, npRaw uint8) bool {
		n := int(nRaw%30) + 4
		np := int(npRaw%4) + 1
		A := sparse.RandomSPD(n, 4, seed)
		b := sparse.RandomVector(n, seed+2)
		d := dist.NewBlock(n, np)
		ok := true
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			xv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			st, err := CG(p, op, bv, xv, Options{Tol: 1e-10})
			if err != nil || !st.Converged {
				ok = false
				return
			}
			sol := xv.Gather()
			if p.Rank() == 0 && relResidual(A, sol, b) > 1e-7 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
