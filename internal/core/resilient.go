// Resilient CG: the checkpoint/rollback-restart machinery that lets a
// solve survive injected (or real) processor failures. The design
// follows classic coordinated in-memory checkpointing for iterative
// methods: CG's entire loop state is (x, r, p, rho) plus the iteration
// number, so a periodic coordinated snapshot of those four per-rank
// blocks is enough to resume the exact floating-point trajectory — a
// restored solve is bit-identical to the fault-free one from the
// checkpointed iteration onward, which the tests assert.
//
// The snapshot protocol needs no extra communication: CG's collectives
// already synchronise the ranks every iteration, so when any rank has
// completed the merge of iteration k, every other rank has at least
// entered it — ranks can never be more than one checkpoint generation
// apart. Writing alternately into two slots (double buffering) with
// the per-rank iteration stamp committed last therefore guarantees
// that at most one slot is torn by a crash, and a unanimity scan picks
// the newest complete one at restart.
package core

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/spmv"
)

// CheckpointStore holds the in-memory checkpoints of one resilient
// solve across restart attempts. It is shared by all ranks of the
// machine (create it once, outside Run) and owned by one logical solve
// at a time. Per-rank entries are only written by that rank's
// goroutine; cross-rank reads are ordered by the solver's collectives
// and by run boundaries, so no locking is needed.
type CheckpointStore struct {
	np      int
	slots   [2]ckptSlot
	reached []int // per-rank highest iteration started (lost-work probe)
}

type ckptSlot struct {
	iter    []int // per-rank committed iteration stamp; -1 = empty
	rho     []float64
	x, r, p [][]float64
}

// NewCheckpointStore creates an empty store for an np-rank machine.
func NewCheckpointStore(np int) *CheckpointStore {
	cs := &CheckpointStore{np: np, reached: make([]int, np)}
	for s := range cs.slots {
		cs.slots[s] = ckptSlot{
			iter: make([]int, np),
			rho:  make([]float64, np),
			x:    make([][]float64, np),
			r:    make([][]float64, np),
			p:    make([][]float64, np),
		}
		for r := 0; r < np; r++ {
			cs.slots[s].iter[r] = -1
		}
	}
	return cs
}

// Latest returns the newest complete checkpoint: the highest iteration
// stamp agreed on by every rank of a slot, or -1 when no complete
// checkpoint exists. A slot a crash tore mid-write fails the unanimity
// test and is skipped — the double buffering guarantees the other slot
// is then complete.
func (cs *CheckpointStore) Latest() (slot, iter int) {
	slot, iter = -1, -1
	for s := range cs.slots {
		k := cs.slots[s].iter[0]
		if k < 0 || k <= iter {
			continue
		}
		unanimous := true
		for r := 1; r < cs.np; r++ {
			if cs.slots[s].iter[r] != k {
				unanimous = false
				break
			}
		}
		if unanimous {
			slot, iter = s, k
		}
	}
	return slot, iter
}

// Reached returns the highest iteration any rank had started — the
// lost-work probe the restart driver uses to account iterations that a
// failed attempt computed past its last checkpoint.
func (cs *CheckpointStore) Reached() int {
	max := 0
	for _, k := range cs.reached {
		if k > max {
			max = k
		}
	}
	return max
}

// save snapshots one rank's loop state into a slot: payload first, the
// iteration stamp last. The copies contain no communication or modeled
// compute, so an injected crash cannot fire mid-snapshot — per rank the
// commit is atomic, and torn checkpoints only arise from some ranks
// not reaching save at all (which the stamp unanimity detects).
func (cs *CheckpointStore) save(slot, rank, iter int, rho float64, x, r, p *darray.Vector) {
	sl := &cs.slots[slot]
	sl.x[rank] = append(sl.x[rank][:0], x.Local()...)
	sl.r[rank] = append(sl.r[rank][:0], r.Local()...)
	sl.p[rank] = append(sl.p[rank][:0], p.Local()...)
	sl.rho[rank] = rho
	sl.iter[rank] = iter
}

// restore copies one rank's checkpointed state back and returns rho.
func (cs *CheckpointStore) restore(slot, rank int, x, r, p *darray.Vector) float64 {
	sl := &cs.slots[slot]
	copy(x.Local(), sl.x[rank])
	copy(r.Local(), sl.r[rank])
	copy(p.Local(), sl.p[rank])
	return sl.rho[rank]
}

// Resilience configures CGResilient.
type Resilience struct {
	// Store holds checkpoints across restart attempts; required.
	Store *CheckpointStore
	// Interval checkpoints every Interval iterations (0 disables
	// checkpointing; the solve then always restarts from scratch).
	Interval int
	// GuardTol triggers residual replacement at restore when the
	// restored recurrence residual deviates from the true residual
	// b - A·x by more than GuardTol·||b||. Zero means 1e-8.
	GuardTol float64
}

// CGResilient is CG with coordinated in-memory checkpointing and
// rollback restart. Run it like CG; when the machine kills the run
// with a comm.PeerFailure, re-run the same function (after
// fault-injector Advance) — the solver finds the newest complete
// checkpoint in the store and resumes from it, replaying the exact CG
// trajectory. At restore it recomputes the true residual b - A·x and
// replaces the checkpointed r when the two deviate beyond the guard
// tolerance, so even a corrupted (or very old) checkpoint still
// converges. Checkpoint writes charge modeled stable-storage time
// (t_s + bytes·t_w per rank) via ChargeIO, making the
// interval-vs-MTBF trade-off of experiment E20 measurable.
func CGResilient(p *comm.Proc, A spmv.Operator, b, x *darray.Vector, opt Options, res Resilience) (Stats, error) {
	if res.Store == nil {
		panic("core: CGResilient requires Resilience.Store")
	}
	opt = opt.withDefaults(A.N())
	st := newStats(opt)
	o := ops{s: &st, p: p}
	w := opt.Work.begin()
	cs := res.Store
	rank := p.Rank()
	guard := res.GuardTol
	if guard == 0 {
		guard = 1e-8
	}

	r := w.take(b)
	pv := w.take(b)
	q := w.take(b)
	var rnsq, rn, bn, rho float64
	start := 0

	if slot, citer := cs.Latest(); citer >= 0 {
		// Rollback restart: resume from the newest complete checkpoint.
		// The restored (x, r, p, rho) are bit-exact copies of the loop
		// state after iteration citer, so the continuation replays the
		// fault-free trajectory exactly — unless the guard below finds
		// the recurrence residual has drifted from the truth.
		rho = cs.restore(slot, rank, x, r, pv)
		st.Restores++
		start = citer
		cs.reached[rank] = citer
		bn = math.Sqrt(o.mergeScalar(b.NormSqLocal()))
		st.DotProducts++
		if bn == 0 {
			bn = 1
		}
		// Residual-replacement guard: one extra mat-vec per restore.
		o.apply(A, x, q)
		q.Scale(-1)
		o.axpy(q, 1, b) // q = b - A·x, the true residual
		var d [2]float64
		d[0] = q.DiffNormSqLocal(r)
		d[1] = q.NormSqLocal()
		st.DotProducts += 2
		o.merge(d[:])
		if math.Sqrt(d[0]) > guard*bn {
			r.CopyFrom(q)
			rho = d[1]
			st.Replacements++
		}
		rnsq = rho
		rn = math.Sqrt(rnsq)
		if rn/bn <= opt.Tol {
			st.Iterations = citer
			st.StartIteration = citer
			st.Converged = true
			st.Residual = rn / bn
			return st, nil
		}
	} else {
		// Clean start: identical to CG's prologue.
		rnsq, bn = residual0(o, A, b, x, r)
		rn = math.Sqrt(rnsq)
		if rn/bn <= opt.Tol {
			st.Converged = true
			st.Residual = rn / bn
			return st, nil
		}
		pv.CopyFrom(r)
		rho = rnsq
	}
	st.StartIteration = start

	// The loop body is CG's, verbatim — same merges, same arithmetic,
	// bit-identical iterates — plus the periodic checkpoint.
	for k := start + 1; k <= opt.MaxIter; k++ {
		st.Iterations = k
		cs.reached[rank] = k
		pq := o.mergeScalar(o.applyDotLocal(A, pv, q))
		if pq == 0 {
			return st, fmt.Errorf("%w: p·Ap = 0 at iteration %d", ErrBreakdown, k)
		}
		alpha := rho / pq
		o.axpy(x, alpha, pv)
		rnsq = o.mergeScalar(o.axpyNormSqLocal(r, -alpha, q))
		rn = math.Sqrt(rnsq)
		rel := rn / bn
		o.record(rel, opt)
		if rel <= opt.Tol {
			st.Converged = true
			st.Residual = rel
			return st, nil
		}
		rho0 := rho
		rho = rnsq
		if rho0 == 0 {
			return st, fmt.Errorf("%w: rho = 0 at iteration %d", ErrBreakdown, k)
		}
		beta := rho / rho0
		o.aypx(pv, beta, r)
		if res.Interval > 0 && k%res.Interval == 0 {
			// Alternate slots by checkpoint generation so a crash during
			// generation g+1 leaves generation g intact.
			cs.save((k/res.Interval)%2, rank, k, rho, x, r, pv)
			st.Checkpoints++
			// Charge the stable-storage write: three vectors of 8-byte
			// words per rank, modeled like one message injection.
			p.ChargeIO(3 * 8 * len(x.Local()))
		}
	}
	st.Residual = rn / bn
	return st, nil
}
