package core

import (
	"fmt"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
)

// Preconditioner approximates z = M⁻¹·r on distributed vectors.
type Preconditioner interface {
	// Apply computes z = M⁻¹·r; r and z must be aligned.
	Apply(r, z *darray.Vector)
	// Name identifies the preconditioner in reports.
	Name() string
}

// Identity is the no-op preconditioner.
type Identity struct{}

// Apply implements Preconditioner.
func (Identity) Apply(r, z *darray.Vector) { z.CopyFrom(r) }

// Name implements Preconditioner.
func (Identity) Name() string { return "none" }

// Jacobi is distributed diagonal scaling. Because the diagonal is
// aligned with the vectors, the application is purely local — the only
// preconditioner the paper's alignment scheme supports without extra
// communication.
type Jacobi struct {
	p       *comm.Proc
	invDiag []float64 // local block of 1/diag(A)
}

// NewJacobi extracts this processor's block of the reciprocal diagonal
// of A under the vector distribution d. The validity check is
// collective: if any processor finds a zero diagonal entry, every
// processor returns the error, keeping SPMD control flow aligned.
func NewJacobi(p *comm.Proc, A *sparse.CSR, d dist.Dist) (*Jacobi, error) {
	r := p.Rank()
	inv := make([]float64, d.Count(r))
	firstBad := -1
	for off := range inv {
		g := d.Global(r, off)
		v := A.At(g, g)
		if v == 0 {
			if firstBad < 0 {
				firstBad = g
			}
			continue
		}
		inv[off] = 1 / v
	}
	bad := math.Inf(1)
	if firstBad >= 0 {
		bad = float64(firstBad)
	}
	if worst := p.AllreduceScalar(bad, comm.OpMin); !math.IsInf(worst, 1) {
		return nil, fmt.Errorf("core: zero diagonal at %d, Jacobi undefined", int(worst))
	}
	return &Jacobi{p: p, invDiag: inv}, nil
}

// Apply implements Preconditioner: a local element-wise product.
func (j *Jacobi) Apply(r, z *darray.Vector) {
	rl, zl := r.Local(), z.Local()
	if len(rl) != len(j.invDiag) {
		panic(fmt.Sprintf("core: Jacobi block %d applied to vector block %d", len(j.invDiag), len(rl)))
	}
	for i := range rl {
		zl[i] = rl[i] * j.invDiag[i]
	}
	j.p.Compute(len(rl))
}

// Name implements Preconditioner.
func (j *Jacobi) Name() string { return "jacobi" }
