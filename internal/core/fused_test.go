package core

import (
	"math"
	"testing"

	"hpfcg/internal/comm"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
)

// TestCGUnfusedBitIdenticalToCG: the fusions inside CG (batched setup
// norms, fused axpy+norm, rho reuse) reorder no floating-point
// arithmetic, so the restructured CG and the literal Figure 2 baseline
// must walk exactly the same iterates — same counts, same solution
// bits, same recorded history.
func TestCGUnfusedBitIdenticalToCG(t *testing.T) {
	A := sparse.RandomSPD(60, 5, 21)
	b := sparse.RandomVector(60, 8)
	for _, np := range testNPs {
		d := dist.NewBlock(60, np)
		var solF, solU []float64
		var stF, stU Stats
		machine(np).Run(func(p *comm.Proc) {
			op := spmv.NewRowBlockCSR(p, A, d)
			bv := darray.New(p, d)
			bv.SetGlobal(func(g int) float64 { return b[g] })
			x1 := darray.New(p, d)
			x2 := darray.New(p, d)
			s1, err1 := CG(p, op, bv, x1, Options{Tol: 1e-10, History: true})
			s2, err2 := CGUnfused(p, op, bv, x2, Options{Tol: 1e-10, History: true})
			if err1 != nil || err2 != nil {
				t.Errorf("np=%d: %v %v", np, err1, err2)
				return
			}
			f1, f2 := x1.Gather(), x2.Gather()
			if p.Rank() == 0 {
				solF, solU, stF, stU = f1, f2, s1, s2
			}
		})
		if stF.Iterations != stU.Iterations {
			t.Fatalf("np=%d: fused %d iterations, unfused %d", np, stF.Iterations, stU.Iterations)
		}
		for g := range solF {
			if solF[g] != solU[g] {
				t.Fatalf("np=%d: solutions differ at %d: %v vs %v", np, g, solF[g], solU[g])
			}
		}
		for i := range stF.History {
			if stF.History[i] != stU.History[i] {
				t.Fatalf("np=%d: history differs at %d: %v vs %v", np, i, stF.History[i], stU.History[i])
			}
		}
	}
}

// TestCGReductionRounds: the communication-avoidance ledger. CG merges
// twice per iteration (fused mat-vec dot, fused norm-and-rho) plus the
// one batched setup round; CGUnfused pays the textbook three per
// iteration plus three at setup; CGFused pays one per iteration plus
// at most a few explicit-norm recomputations near convergence.
func TestCGReductionRounds(t *testing.T) {
	A := sparse.Laplace2D(8, 8)
	b := sparse.RandomVector(A.NRows, 3)
	d := dist.NewBlock(A.NRows, 4)
	machine(4).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		opt := Options{Tol: 1e-10}

		x := darray.New(p, d)
		st, err := CG(p, op, bv, x, opt)
		if err != nil {
			t.Errorf("CG: %v", err)
			return
		}
		if want := 1 + 2*st.Iterations; st.Reductions != want {
			t.Errorf("CG: %d reductions over %d iterations, want %d (2/iter + setup)", st.Reductions, st.Iterations, want)
		}

		x = darray.New(p, d)
		st, err = CGUnfused(p, op, bv, x, opt)
		if err != nil {
			t.Errorf("CGUnfused: %v", err)
			return
		}
		// 3 setup rounds + 3 per iteration, except the converged final
		// iteration returns before its rho recompute round.
		if want := 2 + 3*st.Iterations; st.Reductions != want {
			t.Errorf("CGUnfused: %d reductions over %d iterations, want %d (3/iter + setup - 1)", st.Reductions, st.Iterations, want)
		}

		x = darray.New(p, d)
		st, err = CGFused(p, op, bv, x, opt)
		if err != nil {
			t.Errorf("CGFused: %v", err)
			return
		}
		lo, hi := 1+st.Iterations, 1+st.Iterations+3
		if st.Reductions < lo || st.Reductions > hi {
			t.Errorf("CGFused: %d reductions over %d iterations, want within [%d, %d] (1/iter + setup + end-game norms)",
				st.Reductions, st.Iterations, lo, hi)
		}
	})
}

// TestCGFusedSolvesLikeCG: the single-reduction variant follows a
// different floating-point trajectory, but it must converge to the same
// solution within tolerance and in a comparable number of iterations.
func TestCGFusedSolvesLikeCG(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"laplace2d": sparse.Laplace2D(8, 8),
		"random":    sparse.RandomSPD(60, 5, 21),
	}
	for name, A := range mats {
		b := sparse.RandomVector(A.NRows, 5)
		for _, np := range []int{1, 3, 4} {
			d := dist.NewBlock(A.NRows, np)
			var ref, sol []float64
			var stCG, stF Stats
			machine(np).Run(func(p *comm.Proc) {
				op := spmv.NewRowBlockCSR(p, A, d)
				bv := darray.New(p, d)
				bv.SetGlobal(func(g int) float64 { return b[g] })
				x1 := darray.New(p, d)
				x2 := darray.New(p, d)
				s1, err1 := CG(p, op, bv, x1, Options{Tol: 1e-10})
				s2, err2 := CGFused(p, op, bv, x2, Options{Tol: 1e-10})
				if err1 != nil || err2 != nil {
					t.Errorf("%s np=%d: %v %v", name, np, err1, err2)
					return
				}
				f1, f2 := x1.Gather(), x2.Gather()
				if p.Rank() == 0 {
					ref, sol, stCG, stF = f1, f2, s1, s2
				}
			})
			if !stF.Converged {
				t.Fatalf("%s np=%d: CGFused did not converge: %v", name, np, stF)
			}
			if rr := relResidual(A, sol, b); rr > 1e-8 {
				t.Errorf("%s np=%d: CGFused residual %g", name, np, rr)
			}
			if stF.Iterations > stCG.Iterations+5 {
				t.Errorf("%s np=%d: CGFused took %d iterations, CG %d", name, np, stF.Iterations, stCG.Iterations)
			}
			for g := range sol {
				if math.Abs(sol[g]-ref[g]) > 1e-6 {
					t.Fatalf("%s np=%d: solutions differ at %d: %v vs %v", name, np, g, sol[g], ref[g])
				}
			}
		}
	}
}

// TestWorkspaceReuse: a workspace hands back the same vectors across
// solves of the same shape, rebuilds on shape changes, and solves with
// it are identical to solves without.
func TestWorkspaceReuse(t *testing.T) {
	A := sparse.Laplace2D(6, 6)
	b := sparse.RandomVector(A.NRows, 9)
	d := dist.NewBlock(A.NRows, 2)
	machine(2).Run(func(p *comm.Proc) {
		op := spmv.NewRowBlockCSR(p, A, d)
		bv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		ws := NewWorkspace()

		x1 := darray.New(p, d)
		st1, err := CG(p, op, bv, x1, Options{Tol: 1e-10, Work: ws})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		nvecs := len(ws.vecs)
		x2 := darray.New(p, d)
		st2, err := CG(p, op, bv, x2, Options{Tol: 1e-10, Work: ws})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if len(ws.vecs) != nvecs {
			t.Errorf("second same-shape solve grew the workspace: %d -> %d vectors", nvecs, len(ws.vecs))
		}
		if st1.Iterations != st2.Iterations {
			t.Errorf("workspace reuse changed iterations: %d vs %d", st1.Iterations, st2.Iterations)
		}
		x3 := darray.New(p, d)
		st3, err := CG(p, op, bv, x3, Options{Tol: 1e-10})
		if err != nil {
			t.Errorf("%v", err)
			return
		}
		if st3.Iterations != st1.Iterations {
			t.Errorf("workspace changed the arithmetic: %d vs %d iterations", st1.Iterations, st3.Iterations)
		}
		l1, l3 := x1.Local(), x3.Local()
		for i := range l1 {
			if l1[i] != l3[i] {
				t.Errorf("workspace changed the solution at local %d", i)
			}
		}

		// Shape change: a smaller aligned problem rebuilds cleanly.
		d2 := dist.NewBlock(16, 2)
		proto := darray.New(p, d2)
		v := ws.begin().take(proto)
		if v.Len() != 16 {
			t.Errorf("shape change: got vector of length %d", v.Len())
		}
	})
}

// TestCGSteadyStateIterationsNoAllocs is the tentpole's acceptance
// guard: with a Workspace, pooled collectives, and the operators'
// reusable gather buffers, a steady-state CG iteration performs zero
// heap allocations on every rank. Measured as a delta — a 40-iteration
// solve must allocate no more than a 10-iteration solve, so per-solve
// constants (Stats, the workspace warm-up, gather targets) cancel and
// only per-iteration allocations would fail the bound.
func TestCGSteadyStateIterationsNoAllocs(t *testing.T) {
	A := sparse.Laplace2D(16, 16)
	n := A.NRows
	const np = 4
	d := dist.NewBlock(n, np)
	b := sparse.RandomVector(n, 7)

	solvers := map[string]func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector, opt Options) (Stats, error){
		"cg": func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector, opt Options) (Stats, error) {
			return CG(p, op, bv, xv, opt)
		},
		"cgfused": func(p *comm.Proc, op spmv.Operator, bv, xv *darray.Vector, opt Options) (Stats, error) {
			return CGFused(p, op, bv, xv, opt)
		},
	}
	for name, solve := range solvers {
		allocsAt := func(iters int) float64 {
			var allocs float64
			machine(np).Run(func(p *comm.Proc) {
				op := spmv.NewRowBlockCSR(p, A, d)
				bv := darray.New(p, d)
				bv.SetGlobal(func(g int) float64 { return b[g] })
				xv := darray.New(p, d)
				ws := NewWorkspace()
				// Tol below reach so the solve always runs MaxIter
				// iterations; one warm-up solve fills pools everywhere.
				opt := Options{Tol: 1e-300, MaxIter: iters, Work: ws}
				run := func() {
					xv.Fill(0)
					if _, err := solve(p, op, bv, xv, opt); err != nil {
						t.Errorf("%s: %v", name, err)
					}
				}
				run()
				if p.Rank() == 0 {
					allocs = testing.AllocsPerRun(2, run)
				} else {
					for i := 0; i < 3; i++ {
						run()
					}
				}
			})
			return allocs
		}
		short, long := allocsAt(10), allocsAt(40)
		if long > short+0.5 {
			t.Errorf("%s: 40-iteration solve allocates %.1f, 10-iteration %.1f — iterations are hitting the heap (%.2f allocs/iter)",
				name, long, short, (long-short)/30)
		}
	}
}
