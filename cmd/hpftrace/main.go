// Command hpftrace runs a named experiment from internal/bench with
// event-level tracing attached and turns every Machine.Run the
// experiment performed into drill-down artifacts: a Chrome/Perfetto
// trace.json per run, the per-pair communication matrix (messages and
// modeled bytes), an ASCII per-rank timeline, and the happens-before
// critical path with its compute/overhead/network breakdown — the
// "where does the modeled makespan come from" view behind each paper
// figure.
//
// Examples:
//
//	hpftrace -exp E2                      # trace Scenario 1, write traces/E2-*.trace.json
//	hpftrace -exp E1 -quick -o /tmp/tr    # small sizes, custom output dir
//	hpftrace -exp E3 -run 2 -width 100    # detail view of the experiment's 3rd run
//	hpftrace -exp E14 -notimeline         # matrices and critical paths only
//
// Load the written trace.json files in ui.perfetto.dev or
// chrome://tracing; timestamps are the modeled clock in microseconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hpfcg/internal/bench"
	"hpfcg/internal/fault"
	"hpfcg/internal/topology"
	"hpfcg/internal/trace"
)

func main() {
	var (
		exp        = flag.String("exp", "E2", "experiment ID to trace (see cgbench -exp)")
		quick      = flag.Bool("quick", false, "small problem sizes")
		topoName   = flag.String("topology", "hypercube", "hypercube | ring | mesh2d | full")
		seed       = flag.Int64("seed", 1996, "matrix generator seed")
		outDir     = flag.String("o", "traces", "output directory for trace.json files ('' = no files)")
		runSel     = flag.Int("run", -1, "run index for the detail view (-1 = last run)")
		width      = flag.Int("width", 80, "ASCII timeline width in characters")
		noTimeline = flag.Bool("notimeline", false, "skip the ASCII timeline")
		noMatrix   = flag.Bool("nomatrix", false, "skip the communication matrix tables")
		noTables   = flag.Bool("notables", false, "suppress the experiment's own tables")
		faultStr   = flag.String("fault", "", `fault spec injected into every machine, e.g. "straggle:rank=1,x=4"`)
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed
	topo, err := topology.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	cfg.Topo = topo
	tracer := &trace.Tracer{}
	cfg.Tracer = tracer
	if *faultStr != "" {
		plan, err := fault.Parse(*faultStr)
		if err != nil {
			fatal(err)
		}
		inj, err := fault.NewInjector(plan)
		if err != nil {
			fatal(err)
		}
		cfg.Injector = inj
	}

	runner, err := bench.Get(*exp)
	if err != nil {
		fatal(err)
	}
	tables, err := runner(cfg)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *exp, err))
	}
	if !*noTables {
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}

	runs := tracer.Runs()
	if len(runs) == 0 {
		fatal(fmt.Errorf("%s performed no machine runs (nothing to trace)", *exp))
	}

	// Per-run summary: makespan vs critical path, traffic, export path.
	fmt.Printf("traced %d machine runs of %s:\n", len(runs), *exp)
	for i, rec := range runs {
		ps := trace.CriticalPath(rec)
		cm := trace.Matrix(rec)
		var bytes, msgs int64
		for s := 0; s < cm.NP; s++ {
			for d := 0; d < cm.NP; d++ {
				bytes += cm.Bytes[s][d]
				msgs += cm.Msgs[s][d]
			}
		}
		slack := 0.0
		if rec.ModelTime() > 0 {
			slack = 1 - ps.Length/rec.ModelTime()
		}
		fmt.Printf("  [%d] %-12s np=%-3d events=%-6d msgs=%-6d bytes=%-9d makespan=%.6gs critpath=%.6gs (slack %.1f%%)\n",
			i, rec.Label(), rec.NP(), rec.NumEvents(), msgs, bytes, rec.ModelTime(), ps.Length, 100*slack)
		if *outDir != "" {
			name := fmt.Sprintf("%s-%s.trace.json", *exp, rec.Label())
			if err := writeTrace(filepath.Join(*outDir, name), rec); err != nil {
				fatal(err)
			}
		}
	}
	if *outDir != "" {
		fmt.Printf("wrote %d trace.json files to %s (open in ui.perfetto.dev)\n", len(runs), *outDir)
	}

	// Detail view of one run: matrix, critical path, timeline.
	sel := *runSel
	if sel < 0 {
		sel = len(runs) - 1
	}
	if sel >= len(runs) {
		fatal(fmt.Errorf("-run %d out of range (have %d runs)", sel, len(runs)))
	}
	rec := runs[sel]
	fmt.Printf("\ndetail: run %d (%s), np=%d\n", sel, rec.Label(), rec.NP())
	if !*noMatrix {
		title := fmt.Sprintf("%s %s communication matrix", *exp, rec.Label())
		for _, t := range trace.Matrix(rec).Tables(title) {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Println(trace.CriticalPath(rec).String())
	if !*noTimeline {
		if err := trace.WriteTimeline(os.Stdout, rec, *width); err != nil {
			fatal(err)
		}
	}
}

func writeTrace(path string, rec *trace.Recorder) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if werr = trace.WriteChromeTrace(f, rec); werr != nil {
		werr = fmt.Errorf("writing %s: %w", path, werr)
	}
	if cerr := f.Close(); cerr != nil && werr == nil {
		werr = cerr
	}
	return werr
}

// fatal prints the error and exits nonzero. Output that was already
// rendered stays on stdout, so a partial trace session remains usable.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpftrace:", err)
	os.Exit(1)
}
