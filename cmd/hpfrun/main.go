// Command hpfrun is the directive-driven solver: it parses an HPF
// directive file (with the paper's proposed !EXT$ extensions), binds
// it to a matrix, and executes the distributed CG solve the directives
// imply — the closest thing this repository has to "compiling and
// running" the paper's Figure 2.
//
// Examples:
//
//	hpfrun -np 4 -matrix banded:512:4 figure2.hpf
//	hpfrun -np 8 -matrix powerlawc:2000:1 -demo balanced
//	hpfrun -np 4 -matrix banded:512:4 -demo csc-merge -commmatrix
//	hpfrun -np 4 -matrix banded:512:4 -demo csr -timeout 30s
//	hpfrun -np 4 -file matrix.mtx -demo csr
//	hpfrun -np 4 -hpcg 8,8,8 -levels 3
//	hpfrun -np 4 -stencil 5pt:64,48
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/fault"
	"hpfcg/internal/hpf"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/mfree"
	"hpfcg/internal/mg"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

// Built-in directive programs for -demo, mirroring the paper's listings.
var demos = map[string]string{
	"csr": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
`,
	"csc-serial": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
`,
	"csc-merge": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
!EXT$ ITERATION j ON PROCESSOR(j*np/n), PRIVATE(q(n)) WITH MERGE(+)
`,
	"balanced": `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
!EXT$ INDIVISABLE a(ATOM:i) :: row(i:i+1)
!EXT$ REDISTRIBUTE smA USING CG_BALANCED_PARTITIONER_1
`,
}

func main() {
	var (
		np         = flag.Int("np", 4, "number of virtual processors")
		matrixSpec = flag.String("matrix", "banded:512:4", "generator spec (see cgsolve -help)")
		matrixFile = flag.String("file", "", "Matrix Market file to solve (overrides -matrix)")
		topoName   = flag.String("topology", "hypercube", "hypercube | ring | mesh2d | full")
		tol        = flag.Float64("tol", 1e-10, "relative residual tolerance")
		demo       = flag.String("demo", "", "built-in directive program: csr | csc-serial | csc-merge | balanced")
		commMatrix = flag.Bool("commmatrix", false, "print the communication matrix")
		timeout    = flag.Duration("timeout", 0, "abort a deadlocked SPMD solve after this long (0 = wait forever)")
		faultStr   = flag.String("fault", "", `fault spec, e.g. "crash:rank=2@t=0.5ms,straggle:rank=1,x=4"`)
		resilient  = flag.Bool("resilient", false, "survive injected crashes via checkpoint/restart (SolveCGResilient)")
		sstep      = flag.Int("sstep", -1, "s-step CG blocking factor: -1 = plain CG, 0 = auto from the cost model, s >= 1 fixed (CSR layouts)")
		pipelined  = flag.Bool("pipelined", false, "pipelined CG: hide the per-iteration allreduce behind the mat-vec (CSR layouts and -stencil; excludes -sstep, -resilient, -hpcg)")
		ckpt       = flag.Int("ckpt", 10, "checkpoint every N iterations (with -resilient)")
		restarts   = flag.Int("restarts", 3, "max restart attempts after failures (with -resilient)")
		hpcg       = flag.String("hpcg", "", "solve the HPCG 27-point stencil instead of a directive program: per-rank brick as nx,ny,nz (combines with -np, -tol, -topology)")
		levels     = flag.Int("levels", 0, "V-cycle hierarchy depth with -hpcg (0 = default, clamped to the grid)")
		smooths    = flag.Int("smooths", 0, "Gauss-Seidel sweeps per V-cycle stage with -hpcg (0 = default)")
		stencil    = flag.String("stencil", "", `solve a stencil system matrix-free (no assembly, no inspector): "5pt:nx,ny" or "27pt:nx,ny,nz" global grid (combines with -np, -tol, -topology)`)
	)
	flag.Parse()

	if *pipelined {
		switch {
		case *sstep >= 0:
			fatal(fmt.Errorf("-pipelined does not combine with -sstep (overlap and blocking attack the same latency term)"))
		case *resilient:
			fatal(fmt.Errorf("-pipelined does not combine with -resilient (checkpointing follows the plain recurrence)"))
		case *hpcg != "":
			fatal(fmt.Errorf("-pipelined does not combine with -hpcg (the V-cycle is the inner solve)"))
		}
	}
	if *hpcg != "" {
		runHPCG(*hpcg, *np, *topoName, *tol, *levels, *smooths)
		return
	}
	if *stencil != "" {
		runStencil(*stencil, *np, *topoName, *tol, *pipelined)
		return
	}

	var src string
	switch {
	case *demo != "":
		var ok bool
		src, ok = demos[*demo]
		if !ok {
			fatal(fmt.Errorf("unknown demo %q", *demo))
		}
	case flag.NArg() > 0:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fatal(fmt.Errorf("need a directive file argument or -demo"))
	}

	var A *sparse.CSR
	var err error
	matrixName := *matrixSpec
	if *matrixFile != "" {
		f, ferr := os.Open(*matrixFile)
		if ferr != nil {
			fatal(ferr)
		}
		A, err = sparse.ReadMatrixMarket(f)
		f.Close()
		matrixName = *matrixFile
	} else {
		A, err = sparse.GeneratorByName(*matrixSpec)
	}
	if err != nil {
		fatal(err)
	}
	if A.NRows != A.NCols {
		fatal(fmt.Errorf("matrix %s is not square (%dx%d)", matrixName, A.NRows, A.NCols))
	}
	n, nz := A.NRows, A.NNZ()
	b := sparse.RandomVector(n, 42) // deterministic, nontrivial rhs

	prog, err := hpf.Parse(src)
	if err != nil {
		fatal(err)
	}
	sizes := map[string]int{
		"p": n, "q": n, "r": n, "x": n, "b": n,
		"row": n + 1, "col": nz, "a": nz,
		"colptr": n + 1, "rowidx": nz,
	}
	if _, csr := findFormat(prog); csr {
		sizes["row"], sizes["col"] = n+1, nz
	} else {
		sizes["row"] = nz // CSC trio row indices
	}
	plan, err := hpf.Bind(prog, *np, sizes, map[string]int{"n": n, "nz": nz})
	if err != nil {
		fatal(err)
	}

	topo, err := topology.ByName(*topoName)
	if err != nil {
		fatal(err)
	}
	m := comm.NewMachine(*np, topo, topology.DefaultCostParams())
	if *faultStr != "" {
		fp, err := fault.Parse(*faultStr)
		if err != nil {
			fatal(err)
		}
		inj, err := fault.NewInjector(fp)
		if err != nil {
			fatal(err)
		}
		m.AttachInjector(inj)
	}
	if *sstep >= 0 && *resilient {
		fatal(fmt.Errorf("-sstep does not combine with -resilient (checkpointing is per-iteration)"))
	}
	var res *hpfexec.Result
	switch {
	case *resilient:
		rres, rerr := hpfexec.SolveCGResilient(m, plan, A, b, core.Options{Tol: *tol},
			hpfexec.ResilientOptions{Interval: *ckpt, MaxRestarts: *restarts})
		if rerr != nil {
			fatal(rerr)
		}
		res = &rres.Result
		fmt.Printf("faults:   attempts=%d failures=%d lost_iters=%d mission_t=%.6gs\n",
			rres.Attempts, len(rres.Failures), rres.LostIterations, rres.TotalModelTime)
		for _, pf := range rres.Failures {
			fmt.Printf("          %v\n", pf)
		}
	case *pipelined && *timeout > 0:
		res, err = hpfexec.SolveCGPipelinedTimeout(m, plan, A, b, core.Options{Tol: *tol}, *timeout)
	case *pipelined:
		res, err = hpfexec.SolveCGPipelined(m, plan, A, b, core.Options{Tol: *tol})
	case *sstep >= 0 && *timeout > 0:
		res, err = hpfexec.SolveCGSStepTimeout(m, plan, A, b, core.Options{Tol: *tol}, *sstep, *timeout)
	case *sstep >= 0:
		res, err = hpfexec.SolveCGSStep(m, plan, A, b, core.Options{Tol: *tol}, *sstep)
	case *timeout > 0:
		res, err = hpfexec.SolveCGTimeout(m, plan, A, b, core.Options{Tol: *tol}, *timeout)
	default:
		res, err = hpfexec.SolveCG(m, plan, A, b, core.Options{Tol: *tol})
	}
	if err != nil {
		fatal(err)
	}
	if *sstep >= 0 {
		fmt.Printf("sstep:    s=%d (requested %d) guard_trips=%d\n",
			res.Strategy.SStep, *sstep, res.Stats.Replacements)
	}
	if *pipelined {
		hidden, exposed := res.Run.ReduceOverlap()
		fmt.Printf("overlap:  reductions=%d hidden=%.6gs exposed=%.6gs guard_trips=%d\n",
			res.Stats.Reductions, hidden, exposed, res.Stats.Replacements)
	}

	fmt.Printf("matrix:   n=%d nnz=%d (%s)\n", n, nz, matrixName)
	fmt.Printf("plan:\n%s", plan.Describe())
	fmt.Printf("strategy: %s\n", res.Strategy)
	fmt.Printf("solver:   %s\n", res.Stats)
	fmt.Printf("model:    time=%.6gs comm=%.6gs msgs=%d bytes=%d imbalance=%.3f\n",
		res.Run.ModelTime, res.Run.CommTime(), res.Run.TotalMsgs, res.Run.TotalBytes,
		res.Run.FlopImbalance())
	if *commMatrix {
		if err := report.BytesMatrixTable("communication matrix (bytes sent)", res.Run.BytesMatrix).Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !res.Stats.Converged {
		os.Exit(2)
	}
}

// runHPCG is the -hpcg path: V-cycle multigrid-preconditioned CG on
// the 27-point stencil, each rank owning an nx×ny×nz brick. Prints the
// solver stats, the modeled machine line, and the HPCG-style figure of
// merit (charged flops over the modeled makespan and over wall clock).
func runHPCG(brick string, np int, topoName string, tol float64, levels, smooths int) {
	var nx, ny, nz int
	if _, err := fmt.Sscanf(brick, "%d,%d,%d", &nx, &ny, &nz); err != nil {
		fatal(fmt.Errorf("-hpcg wants nx,ny,nz (e.g. 8,8,8), got %q", brick))
	}
	topo, err := topology.ByName(topoName)
	if err != nil {
		fatal(err)
	}
	m := comm.NewMachine(np, topo, topology.DefaultCostParams())
	pr, err := hpfexec.PrepareMG(m, mg.Spec{Nx: nx, Ny: ny, Nz: nz, Levels: levels, Smooths: smooths})
	if err != nil {
		fatal(err)
	}
	b := sparse.RandomVector(pr.N(), 42)
	start := time.Now()
	out, err := pr.SolveHPCGBatch([][]float64{b}, []core.Options{{Tol: tol}})
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()
	res := out.Results[0]
	fmt.Printf("stencil:  27-pt, brick %dx%dx%d per rank, n=%d np=%d levels=%d\n",
		nx, ny, nz, pr.N(), np, pr.MGLevels())
	fmt.Printf("strategy: %s\n", res.Strategy)
	fmt.Printf("solver:   %s\n", res.Stats)
	fmt.Printf("model:    time=%.6gs comm=%.6gs msgs=%d bytes=%d imbalance=%.3f\n",
		out.Run.ModelTime, out.Run.CommTime(), out.Run.TotalMsgs, out.Run.TotalBytes,
		out.Run.FlopImbalance())
	fmt.Printf("fom:      model=%.4g GF/s wall=%.4g GF/s (flops=%d)\n",
		report.GFlopRate(out.Run.TotalFlops, out.Run.ModelTime),
		report.GFlopRate(out.Run.TotalFlops, wall), out.Run.TotalFlops)
	if !res.Stats.Converged {
		os.Exit(2)
	}
}

// runStencil is the -stencil path: CG on the matrix-free stencil
// operator — nothing assembled, halo schedules derived from the slab
// geometry, modeled setup exactly zero. With -pipelined the solve runs
// the overlap recurrence, the stencil application hiding the round.
func runStencil(arg string, np int, topoName string, tol float64, pipelined bool) {
	spec := mfree.Spec{}
	kind, dims, ok := strings.Cut(arg, ":")
	if !ok {
		fatal(fmt.Errorf(`-stencil wants "5pt:nx,ny" or "27pt:nx,ny,nz", got %q`, arg))
	}
	spec.Stencil = kind
	var err error
	switch kind {
	case "5pt":
		_, err = fmt.Sscanf(dims, "%d,%d", &spec.Nx, &spec.Ny)
	case "27pt":
		_, err = fmt.Sscanf(dims, "%d,%d,%d", &spec.Nx, &spec.Ny, &spec.Nz)
	default:
		err = fmt.Errorf("stencil %q unsupported (5pt, 27pt)", kind)
	}
	if err != nil {
		fatal(fmt.Errorf("-stencil %q: %w", arg, err))
	}
	topo, err := topology.ByName(topoName)
	if err != nil {
		fatal(err)
	}
	m := comm.NewMachine(np, topo, topology.DefaultCostParams())
	prepare := hpfexec.PrepareStencil
	if pipelined {
		prepare = hpfexec.PrepareStencilPipelined
	}
	pr, err := prepare(m, spec)
	if err != nil {
		fatal(err)
	}
	b := sparse.RandomVector(pr.N(), 42)
	out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{{Tol: tol}})
	if err != nil {
		fatal(err)
	}
	res := out.Results[0]
	if pipelined {
		hidden, exposed := out.Run.ReduceOverlap()
		fmt.Printf("overlap:  reductions=%d hidden=%.6gs exposed=%.6gs\n",
			res.Stats.Reductions, hidden, exposed)
	}
	s := pr.Stencil()
	fmt.Printf("stencil:  %s matrix-free, global %s, n=%d nnz=%d np=%d\n",
		s.Stencil, dims, pr.N(), s.NNZ(), np)
	fmt.Printf("strategy: %s\n", res.Strategy)
	fmt.Printf("solver:   %s\n", res.Stats)
	fmt.Printf("model:    time=%.6gs comm=%.6gs setup=%.6gs msgs=%d bytes=%d imbalance=%.3f\n",
		out.Run.ModelTime, out.Run.CommTime(), out.SetupModelTime,
		out.Run.TotalMsgs, out.Run.TotalBytes, out.Run.FlopImbalance())
	if !res.Stats.Converged {
		os.Exit(2)
	}
}

// findFormat reports whether the program declares a CSR sparse matrix.
func findFormat(prog *hpf.Program) (format string, csr bool) {
	for _, sm := range hpf.Find[hpf.SparseMatrix](prog) {
		return sm.Format, sm.Format == "csr"
	}
	return "", true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpfrun:", err)
	os.Exit(1)
}
