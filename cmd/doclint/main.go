// Command doclint enforces the repository's documentation floor, and
// `make check` fails on what it finds. Two rules:
//
//  1. Every Go package must carry a package doc comment (on any
//     non-test file) — the one-paragraph answer to "what is this
//     subsystem and why does it exist".
//  2. In the strict packages — the communication machine
//     (internal/comm), the solver recurrences (internal/core) and the
//     directive executor (internal/hpfexec) — every exported top-level
//     identifier and every exported method must carry a doc comment.
//     These are the packages other layers program against; an exported
//     name without a contract is an API nobody can hold.
//
// Run from the module root: `go run ./cmd/doclint` (the docs-lint
// Makefile target). Exit status 1 lists every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPkgs lists the directories held to rule 2.
var strictPkgs = map[string]bool{
	"internal/comm":    true,
	"internal/core":    true,
	"internal/hpfexec": true,
}

func main() {
	dirs := map[string][]string{} // dir -> non-test .go files
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.ToSlash(filepath.Dir(path))
		dirs[dir] = append(dirs[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}

	var problems []string
	names := make([]string, 0, len(dirs))
	for dir := range dirs {
		names = append(names, dir)
	}
	sort.Strings(names)
	for _, dir := range names {
		fset := token.NewFileSet()
		hasPkgDoc := false
		for _, file := range dirs[dir] {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
			if err != nil {
				problems = append(problems, fmt.Sprintf("%s: %v", file, err))
				continue
			}
			if f.Doc != nil {
				hasPkgDoc = true
			}
			if strictPkgs[dir] {
				problems = append(problems, lintExported(fset, f)...)
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package has no package doc comment", dir))
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doclint:", p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintExported reports every exported top-level identifier in f that
// lacks a doc comment. A grouped const/var/type declaration's doc
// covers all its specs; a spec's own doc covers just that spec.
func lintExported(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	missing := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind, name := "function", d.Name.Name
			if d.Recv != nil {
				recv := receiverName(d.Recv)
				if recv != "" && !ast.IsExported(recv) {
					continue // method on an unexported type: internal surface
				}
				kind, name = "method", recv+"."+d.Name.Name
			}
			missing(d.Pos(), kind, name)
		case *ast.GenDecl:
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
						missing(sp.Pos(), "type", sp.Name.Name)
					}
				case *ast.ValueSpec:
					if sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, name := range sp.Names {
						if name.IsExported() {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							missing(name.Pos(), kind, name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverName extracts the receiver's base type name ("" if unnamed).
func receiverName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
