// hpfserve runs the solver as a long-lived HTTP service: clients POST
// job specs to /jobs, poll (or long-poll) /jobs/{id}, and scrape
// /metrics. Same-matrix jobs coalesce into one SPMD run so the matrix
// is partitioned and inspector-exchanged once per batch.
//
//	hpfserve -addr :8080 -workers 2 -queue 64 -batch 8
//
// Submit a job and wait for the answer:
//
//	curl -s localhost:8080/jobs -d '{"matrix":"laplace2d:32:32","np":4}'
//	curl -s 'localhost:8080/jobs/job-1?wait=1'
//
// SIGINT/SIGTERM drain gracefully: admission closes, queued jobs are
// rejected, in-flight batches finish, then the listener closes.
//
// -smoke starts the server on a loopback port, submits a job to itself
// over real HTTP, asserts convergence and exits — a self-contained
// end-to-end check (used by `make serve-smoke`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hpfcg/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 2, "worker pool size")
		queueCap = flag.Int("queue", 64, "admission queue capacity (backpressure beyond it)")
		maxBatch = flag.Int("batch", 8, "max same-matrix jobs coalesced per dispatch")
		maxNP    = flag.Int("maxnp", 32, "max virtual processors per job")
		smoke    = flag.Bool("smoke", false, "self-test: serve on a loopback port, submit a job over HTTP, verify, exit")

		planCacheMB = flag.Int64("plan-cache-mb", 256, "prepared-plan registry budget in MiB (0 disables)")

		clusterRouter = flag.Bool("cluster-router", false, "run as the cluster router tier instead of a worker shard")
		joinURL       = flag.String("join", "", "router URL to join as a worker shard (e.g. http://router:8080)")
		shardName     = flag.String("name", "", "cluster-unique shard name (default: hostname + port)")
		advertiseURL  = flag.String("advertise", "", "base URL other tiers reach this shard at (default http://127.0.0.1<addr>)")
		clusterSmoke  = flag.Bool("cluster-smoke", false, "self-test: in-process router + 2 shards, repeat traffic, verify plan-registry hit, exit")
	)
	flag.Parse()

	// The flag speaks MiB with 0 = off; serve.Options speaks bytes with
	// 0 = default and negative = off.
	planCacheBytes := *planCacheMB << 20
	if *planCacheMB <= 0 {
		planCacheBytes = -1
	}
	opts := serve.Options{
		Workers:        *workers,
		QueueCap:       *queueCap,
		MaxBatch:       *maxBatch,
		MaxNP:          *maxNP,
		PlanCacheBytes: planCacheBytes,
	}

	if *smoke {
		if err := runSmoke(opts); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("smoke: ok")
		return
	}
	if *clusterSmoke {
		if err := runClusterSmoke(opts); err != nil {
			log.Fatalf("cluster-smoke: %v", err)
		}
		fmt.Println("cluster-smoke: ok")
		return
	}
	if *clusterRouter {
		runRouter(*addr)
		return
	}

	sched := serve.New(opts)
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(sched)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// When joining a cluster, membership runs beside the job server:
	// register + heartbeat now, deregister on shutdown so the ring
	// rebalances immediately.
	var leaveCluster func()
	if *joinURL != "" {
		var err error
		leaveCluster, err = startJoiner(*joinURL, *shardName, *advertiseURL, *addr)
		if err != nil {
			log.Fatalf("cluster join: %v", err)
		}
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("hpfserve listening on %s (workers=%d queue=%d batch=%d)", *addr, *workers, *queueCap, *maxBatch)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: leave the ring first (stop new traffic at the
	// router), then close admission and fail the queue so clients get
	// immediate 503s, let in-flight batches finish, close the listener.
	if leaveCluster != nil {
		leaveCluster()
	}
	log.Print("hpfserve draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sched.Drain(drainCtx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Print("hpfserve stopped")
}

// runSmoke is the end-to-end self-test: real listener, real HTTP
// round-trips, real drain.
func runSmoke(opts serve.Options) error {
	sched := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(sched)}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	log.Printf("smoke: serving on %s", base)

	spec := map[string]any{"matrix": "laplace2d:16:16", "np": 4, "seed": 7}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sub struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return fmt.Errorf("submit failed: status %d id %q err %v", resp.StatusCode, sub.ID, err)
	}
	log.Printf("smoke: submitted %s", sub.ID)

	get, err := http.Get(base + "/jobs/" + sub.ID + "?wait=1&timeout=60s")
	if err != nil {
		return err
	}
	var view struct {
		State  string `json:"state"`
		Error  string `json:"error"`
		Result *struct {
			Converged  bool    `json:"converged"`
			Iterations int     `json:"iterations"`
			Residual   float64 `json:"residual"`
			Strategy   string  `json:"strategy"`
		} `json:"result"`
	}
	err = json.NewDecoder(get.Body).Decode(&view)
	get.Body.Close()
	if err != nil {
		return err
	}
	if view.State != "done" || view.Result == nil || !view.Result.Converged {
		return fmt.Errorf("job did not converge: state=%s err=%q", view.State, view.Error)
	}
	log.Printf("smoke: %s converged in %d iterations (residual %.3e, %s)",
		sub.ID, view.Result.Iterations, view.Result.Residual, view.Result.Strategy)

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mbuf.Bytes(), []byte(`hpfserve_jobs_completed_total{job_type="cg"} 1`)) {
		return errors.New("metrics did not count the completed job")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sched.Drain(ctx); err != nil {
		return err
	}
	return srv.Shutdown(ctx)
}
