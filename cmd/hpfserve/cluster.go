// Cluster modes of the hpfserve binary.
//
// Router tier:
//
//	hpfserve -cluster-router -addr :8080
//
// Worker shards join it, each with a content-hash share of the ring:
//
//	hpfserve -addr :8081 -join http://router:8080 -name shard-a \
//	         -advertise http://10.0.0.5:8081
//
// -cluster-smoke runs the whole topology in one process on loopback
// ports — router + two shards — submits the same matrix twice through
// the router and verifies both solves landed on the same shard with a
// plan-registry hit on the second (used by `make cluster-smoke`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hpfcg/internal/cluster"
	"hpfcg/internal/serve"
)

// runRouter serves the cluster front tier until SIGINT/SIGTERM.
func runRouter(addr string) {
	rt := cluster.NewRouter(cluster.RouterOptions{})
	defer rt.Close()
	srv := &http.Server{Addr: addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hpfserve router listening on %s", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		log.Fatalf("router: %v", err)
	case <-ctx.Done():
	}
	log.Print("router stopping...")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	log.Print("router stopped")
}

// startJoiner wires a worker shard into the cluster; the returned stop
// function deregisters it (blocking briefly) for graceful shutdown.
func startJoiner(routerURL, name, advertise, addr string) (stop func(), err error) {
	if name == "" {
		host, herr := os.Hostname()
		if herr != nil || host == "" {
			host = "shard"
		}
		name = host + strings.ReplaceAll(addr, ":", "-")
	}
	if advertise == "" {
		// Loopback default: right for single-host clusters, must be set
		// explicitly for anything multi-host.
		advertise = "http://127.0.0.1" + addr
	}
	j, err := cluster.NewJoiner(cluster.JoinOptions{
		RouterURL:    routerURL,
		Name:         name,
		AdvertiseURL: advertise,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := j.Run(ctx); err != nil && err != context.Canceled {
			log.Printf("cluster join: %v", err)
		}
	}()
	return func() { cancel(); <-done }, nil
}

// runClusterSmoke is the end-to-end cluster self-test: a router and
// two shards on loopback ports, registered through the real state API,
// repeat traffic through the router, plan-registry hit verified.
func runClusterSmoke(opts serve.Options) error {
	// Router.
	rt := cluster.NewRouter(cluster.RouterOptions{})
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	rsrv := &http.Server{Handler: rt.Handler()}
	go func() { _ = rsrv.Serve(rln) }()
	routerURL := "http://" + rln.Addr().String()
	log.Printf("cluster-smoke: router on %s", routerURL)

	// Two worker shards.
	var scheds []*serve.Scheduler
	for i := 0; i < 2; i++ {
		sched := serve.New(opts)
		scheds = append(scheds, sched)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: serve.NewHandler(sched)}
		go func() { _ = srv.Serve(ln) }()
		shardURL := "http://" + ln.Addr().String()
		stop, err := startJoiner(routerURL, fmt.Sprintf("shard-%d", i+1), shardURL, "")
		if err != nil {
			return err
		}
		defer stop()
		log.Printf("cluster-smoke: shard-%d on %s", i+1, shardURL)
	}
	// Registration is asynchronous; wait for readiness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(routerURL + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && rt.Membership().AliveCount() == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("router never became ready with 2 shards")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The same matrix twice: must land on one shard, hit its registry.
	spec := `{"matrix":"laplace2d:16:16","np":4,"seed":7}`
	var shard string
	var x0 []float64
	for round := 0; round < 2; round++ {
		resp, err := http.Post(routerURL+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			return err
		}
		var ack struct {
			ID    string `json:"id"`
			Shard string `json:"shard"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("round %d: submit status %d (%v)", round, resp.StatusCode, err)
		}
		if round == 0 {
			shard = ack.Shard
		} else if ack.Shard != shard {
			return fmt.Errorf("repeat traffic split: %s then %s", shard, ack.Shard)
		}

		get, err := http.Get(routerURL + "/jobs/" + ack.ID + "?wait=1&timeout=60s")
		if err != nil {
			return err
		}
		var view struct {
			State  string `json:"state"`
			Error  string `json:"error"`
			Result *struct {
				X            []float64 `json:"x"`
				Converged    bool      `json:"converged"`
				Iterations   int       `json:"iterations"`
				PlanCacheHit bool      `json:"plan_cache_hit"`
				SetupModel   float64   `json:"setup_model_time"`
			} `json:"result"`
		}
		err = json.NewDecoder(get.Body).Decode(&view)
		get.Body.Close()
		if err != nil {
			return err
		}
		if view.State != "done" || view.Result == nil || !view.Result.Converged {
			return fmt.Errorf("round %d: state=%s err=%q", round, view.State, view.Error)
		}
		if view.Result.PlanCacheHit != (round > 0) {
			return fmt.Errorf("round %d: plan_cache_hit=%v", round, view.Result.PlanCacheHit)
		}
		if round == 0 {
			x0 = view.Result.X
		} else {
			if view.Result.SetupModel != 0 {
				return fmt.Errorf("warm solve paid setup %g", view.Result.SetupModel)
			}
			for i := range x0 {
				if view.Result.X[i] != x0[i] {
					return fmt.Errorf("warm answer differs at x[%d]", i)
				}
			}
		}
		log.Printf("cluster-smoke: round %d on %s, %d iterations, cache_hit=%v",
			round, ack.Shard, view.Result.Iterations, view.Result.PlanCacheHit)
	}

	// The rollup must show the hit with the owning shard's label.
	mresp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		return err
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	want := fmt.Sprintf("hpfserve_plan_cache_hits_total{shard=%q} 1", shard)
	if !bytes.Contains(mbuf.Bytes(), []byte(want)) {
		return fmt.Errorf("metrics rollup missing %q", want)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range scheds {
		if err := s.Drain(ctx); err != nil {
			return err
		}
	}
	return nil
}
