// Command cgbench regenerates the paper's evaluation: one experiment
// table per figure/claim (see DESIGN.md §5 and EXPERIMENTS.md for the
// index).
//
// Examples:
//
//	cgbench                        # run every experiment at full size
//	cgbench -exp E2,E3             # just the two mat-vec scenarios
//	cgbench -quick                 # small sizes (CI smoke run)
//	cgbench -exp E8 -csv           # CSV output for plotting
//	cgbench -exp E19 -json out.json  # append JSON snapshots for regression diffing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hpfcg/internal/bench"
	"hpfcg/internal/fault"
	"hpfcg/internal/report"
	"hpfcg/internal/topology"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs (see EXPERIMENTS.md) or 'all'")
		quick    = flag.Bool("quick", false, "small problem sizes")
		topo     = flag.String("topology", "hypercube", "hypercube | ring | mesh2d | full")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonPath = flag.String("json", "", "append per-experiment JSON snapshots to this file (BENCH_*.json)")
		seed     = flag.Int64("seed", 1996, "matrix generator seed")
		sstep    = flag.Int("sstep", 0, "restrict E23's s-step sweep to one blocking factor (0 = sweep 1,2,4,8)")
		hpcg     = flag.String("hpcg", "", "restrict E24's per-rank brick sweep to one nx,ny,nz size (empty = full sweep)")
		mfreeArg = flag.String("mfree", "", `restrict E25's stencil sweep to one spec, "5pt:nx,ny" or "27pt:nx,ny,nz" (empty = full sweep)`)
		faultStr = flag.String("fault", "", `fault spec injected into every machine, e.g. "crash:rank=2@t=0.5ms,straggle:rank=1,x=4"`)
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Seed = *seed
	cfg.SStep = *sstep
	cfg.HPCG = *hpcg
	cfg.MFree = *mfreeArg
	t, err := topology.ByName(*topo)
	if err != nil {
		fatal(err)
	}
	cfg.Topo = t
	if *faultStr != "" {
		plan, err := fault.Parse(*faultStr)
		if err != nil {
			fatal(err)
		}
		inj, err := fault.NewInjector(plan)
		if err != nil {
			fatal(err)
		}
		cfg.Injector = inj
	}

	var jsonOut *os.File
	if *jsonPath != "" {
		jsonOut, err = os.OpenFile(*jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer jsonOut.Close()
	}

	ids := bench.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := bench.Get(id)
		if err != nil {
			fatal(err)
		}
		tables, err := runner(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, tab := range tables {
			if *csv {
				if err := tab.RenderCSV(os.Stdout); err != nil {
					fatal(err)
				}
				fmt.Println()
			} else if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if jsonOut != nil {
			snap := &report.Snapshot{
				Experiment: id,
				Timestamp:  time.Now().UTC().Format(time.RFC3339),
				Config: map[string]any{
					"quick":    *quick,
					"topology": *topo,
					"seed":     *seed,
				},
				Tables: tables,
			}
			if err := snap.Write(jsonOut); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgbench:", err)
	os.Exit(1)
}
