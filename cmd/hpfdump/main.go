// Command hpfdump parses a file of HPF directives (including the
// paper's proposed !EXT$ extensions) and prints the bound distribution
// plan — the distributed-array descriptors an HPF compiler would build.
//
// Example:
//
//	hpfdump -np 4 -n 1000 -nz 5000 -size "p=1000,q=1000,r=1000,x=1000,b=1000,row=1001,col=5000,a=5000" figure2.hpf
//
// With no file argument it reads standard input; with -demo it dumps
// the paper's Figure 2 directive block.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hpfcg/internal/hpf"
)

const figure2 = `!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ ALIGN a(:) WITH col(:)
!HPF$ DISTRIBUTE col(BLOCK)
!HPF$ DISTRIBUTE row(CYCLIC((n+NP-1)/np))
`

func main() {
	var (
		np    = flag.Int("np", 4, "processor count")
		n     = flag.Int("n", 1000, "value of the identifier n in size expressions")
		nz    = flag.Int("nz", 5000, "value of the identifier nz in size expressions")
		sizes = flag.String("size", "", "comma-separated array sizes, e.g. p=1000,row=1001")
		demo  = flag.Bool("demo", false, "dump the paper's Figure 2 directives")
	)
	flag.Parse()

	var src string
	switch {
	case *demo:
		src = figure2
		if *sizes == "" {
			*sizes = fmt.Sprintf("p=%d,q=%d,r=%d,x=%d,b=%d,row=%d,col=%d,a=%d",
				*n, *n, *n, *n, *n, *n+1, *nz, *nz)
		}
	case flag.NArg() > 0:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	sizeMap := map[string]int{}
	if *sizes != "" {
		for _, kv := range strings.Split(*sizes, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -size entry %q", kv))
			}
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				fatal(fmt.Errorf("bad -size entry %q: %w", kv, err))
			}
			sizeMap[parts[0]] = v
		}
	}

	prog, err := hpf.Parse(src)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("parsed %d directive(s), skipped %d Fortran line(s)\n\n",
		len(prog.Directives), len(prog.Skipped))
	plan, err := hpf.Bind(prog, *np, sizeMap, map[string]int{"n": *n, "nz": *nz})
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan.Describe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpfdump:", err)
	os.Exit(1)
}
