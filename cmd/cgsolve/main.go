// Command cgsolve solves a linear system with the distributed CG
// solver family on the simulated HPF-style machine, printing solver
// and machine statistics. The matrix comes from a built-in generator
// (-matrix) or a Matrix Market file (-file).
//
// Examples:
//
//	cgsolve -matrix laplace2d:64:64 -np 8
//	cgsolve -matrix powerlaw:2000:1 -np 8 -balanced
//	cgsolve -matrix randspd:500:6:1 -method bicgstab -layout col-csc-merge
//	cgsolve -file system.mtx -method pcg -topology ring
package main

import (
	"flag"
	"fmt"
	"os"

	"hpfcg"
	"hpfcg/internal/report"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
)

func main() {
	var (
		matrixSpec = flag.String("matrix", "laplace2d:32:32", "generator spec: laplace1d:n | laplace2d:nx:ny | laplace3d:nx:ny:nz | banded:n:halfband | randspd:n:nnzrow:seed | powerlaw:n:seed | nascg:S|W|A:seed")
		file       = flag.String("file", "", "Matrix Market file (overrides -matrix)")
		method     = flag.String("method", "cg", "cg | pcg | bicg | cgs | bicgstab")
		layout     = flag.String("layout", "row-csr", "row-csr | col-csc-merge | col-csc-serial | dense-row | dense-col")
		np         = flag.Int("np", 4, "number of virtual processors")
		topo       = flag.String("topology", "hypercube", "hypercube | ring | mesh2d | full")
		tol        = flag.Float64("tol", 1e-10, "relative residual tolerance")
		maxIter    = flag.Int("maxiter", 0, "iteration cap (0 = 2n)")
		balanced   = flag.Bool("balanced", false, "use CG_BALANCED_PARTITIONER_1 row distribution")
		commMatrix = flag.Bool("commmatrix", false, "print the per-pair communication matrix")
		history    = flag.Bool("history", false, "print the residual history as CSV (iteration,relres)")
		spectrum   = flag.Bool("spectrum", false, "estimate A's extremal eigenvalues with a sequential CG probe (CG-Lanczos Ritz values)")
		quiet      = flag.Bool("q", false, "print only the summary line")
	)
	flag.Parse()

	A, err := loadMatrix(*file, *matrixSpec)
	if err != nil {
		fatal(err)
	}
	b := sparse.RandomVector(A.NRows, 42) // deterministic, nontrivial rhs

	res, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
		Method:   hpfcg.Method(*method),
		Layout:   hpfcg.Layout(*layout),
		Balanced: *balanced,
		Tol:      *tol,
		MaxIter:  *maxIter,
		NP:       *np,
		Topology: *topo,
		History:  *history,
	})
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Printf("matrix: n=%d nnz=%d\n", A.NRows, A.NNZ())
		fmt.Printf("machine: np=%d topology=%s layout=%s method=%s balanced=%v\n",
			*np, *topo, *layout, *method, *balanced)
		fmt.Printf("solver: %s\n", res.Stats)
		fmt.Printf("model:  time=%.6gs comm=%.6gs msgs=%d bytes=%d flop_imbalance=%.3f\n",
			res.Run.ModelTime, res.Run.CommTime(), res.Run.TotalMsgs, res.Run.TotalBytes,
			res.Run.FlopImbalance())
	}
	if *spectrum {
		probeX := make([]float64, A.NRows)
		probe, perr := seq.CG(A, b, probeX, seq.Options{MaxIter: 50, Tol: 1e-30, EstimateSpectrum: true})
		if perr != nil && probe.Spectrum == nil {
			fatal(perr)
		}
		sp := probe.Spectrum
		fmt.Printf("spectrum (Ritz, %d-step CG probe): eig in ~[%.6g, %.6g], cond ~ %.6g\n",
			probe.Iterations, sp.EigMin, sp.EigMax, sp.Cond)
	}
	if *history {
		fmt.Println("iteration,relres")
		for i, r := range res.Stats.History {
			fmt.Printf("%d,%.6e\n", i+1, r)
		}
	}
	if *commMatrix {
		if err := report.BytesMatrixTable("communication matrix (bytes sent)", res.Run.BytesMatrix).Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("converged=%v iters=%d relres=%.3e model_time=%.6g\n",
		res.Stats.Converged, res.Stats.Iterations, res.Stats.Residual, res.Run.ModelTime)
	if !res.Stats.Converged {
		os.Exit(2)
	}
}

func loadMatrix(file, spec string) (*sparse.CSR, error) {
	if file == "" {
		return sparse.GeneratorByName(spec)
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sparse.ReadMatrixMarket(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cgsolve:", err)
	os.Exit(1)
}
