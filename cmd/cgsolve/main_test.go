package main

import (
	"os"
	"path/filepath"
	"testing"

	"hpfcg/internal/sparse"
)

func TestLoadMatrixFromGenerator(t *testing.T) {
	A, err := loadMatrix("", "laplace1d:12")
	if err != nil {
		t.Fatal(err)
	}
	if A.NRows != 12 {
		t.Errorf("n = %d", A.NRows)
	}
	if _, err := loadMatrix("", "bogus:1"); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestLoadMatrixFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, sparse.Laplace1D(7)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	A, err := loadMatrix(path, "ignored")
	if err != nil {
		t.Fatal(err)
	}
	if A.NRows != 7 || A.NNZ() != 19 {
		t.Errorf("loaded %dx nnz %d", A.NRows, A.NNZ())
	}
	if _, err := loadMatrix(filepath.Join(t.TempDir(), "missing.mtx"), ""); err == nil {
		t.Error("missing file accepted")
	}
}
