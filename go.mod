module hpfcg

go 1.22
