# Build/test entry points. `make check` is the documented pre-merge
# gate: full build, vet, the whole test suite, and a race-detector
# pass over the concurrency-heavy packages (the SPMD machine and the
# tracing subsystem that hooks into it).

GO ?= go

.PHONY: all build vet test race check bench quick serve-smoke cluster-smoke e23-smoke mg-smoke mfree-smoke pipelined-smoke docs-lint

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The SPMD machine runs every virtual processor as a goroutine and the
# tracer writes per-rank logs from all of them; the solvers and the
# mat-vec kernels now share pooled buffers and workspaces across those
# goroutines, so they race-test too. The fault injector and the
# checkpoint store are shared across ranks and restart attempts, so
# internal/fault and the resilient hpfexec driver join the pass. The
# solver service multiplexes jobs across worker goroutines and batches,
# so internal/serve joins too. The cluster router proxies concurrent
# submissions, scatters sweeps and merges metrics scrapes across
# goroutines, so internal/cluster joins the pass. The multigrid
# V-cycle shares smoother scratch and inspector ghost buffers across
# all ranks of a run, so internal/mg joins the pass. The matrix-free
# halo exchange moves pooled plane buffers between rank goroutines every
# iteration, so internal/mfree joins the pass.
race:
	$(GO) test -race ./internal/comm/... ./internal/trace/... ./internal/core/... ./internal/spmv/... ./internal/fault/... ./internal/hpfexec/... ./internal/serve/... ./internal/cluster/... ./internal/mg/... ./internal/mfree/...

check: build vet test race e23-smoke mg-smoke mfree-smoke pipelined-smoke docs-lint

# Documentation floor: every package carries a package doc comment, and
# the strict packages (internal/comm, internal/core, internal/hpfexec)
# document every exported identifier. See cmd/doclint.
docs-lint:
	$(GO) run ./cmd/doclint

# Quick pass over the communication-avoiding s-step path: the E23
# tables exercise the matrix-powers kernel, the batched Gram recovery,
# the stability guard and the cost-model selector end to end.
e23-smoke:
	$(GO) run ./cmd/cgbench -exp E23 -quick > /dev/null

# Quick pass over the HPCG path: a V-cycle-preconditioned solve through
# hpfrun (smoother, transfers, FoM print) plus the E24 sweep with its
# enforced pcg-beats-cg and bit-identity claims.
mg-smoke:
	$(GO) run ./cmd/hpfrun -hpcg 6,6,6 -np 4 > /dev/null
	$(GO) run ./cmd/cgbench -exp E24 -quick > /dev/null

# Quick pass over the matrix-free stencil path: an assembly-free solve
# through hpfrun (geometric halo, zero modeled setup) plus the E25
# sweep with its enforced bit-identity and setup-elimination claims.
mfree-smoke:
	$(GO) run ./cmd/hpfrun -stencil 5pt:32,24 -np 4 > /dev/null
	$(GO) run ./cmd/cgbench -exp E25 -quick > /dev/null

# Quick pass over the pipelined overlap path: a hidden-round solve
# through hpfrun (overlap books printed) plus the E26 latency-regime
# map with its enforced pipelined-beats-plain and frontier claims.
pipelined-smoke:
	$(GO) run ./cmd/hpfrun -np 4 -matrix banded:256:4 -demo csr -pipelined > /dev/null
	$(GO) run ./cmd/cgbench -exp E26 -quick > /dev/null

# Modeled-machine benchmarks (send path allocation counts included),
# plus the E19 communication-avoidance, E20 resilience, E21 solver-
# service, E22 cluster, E23 s-step, E24 HPCG, E25 matrix-free and E26
# pipelined-overlap smoke runs with JSON snapshots for regression
# diffing.
bench:
	$(GO) test -bench . -benchmem -run NONE ./internal/comm/...
	$(GO) run ./cmd/cgbench -exp E19 -quick -json BENCH_E19_quick.json
	$(GO) run ./cmd/cgbench -exp E20 -quick -json BENCH_E20_quick.json
	$(GO) run ./cmd/cgbench -exp E21 -quick -json BENCH_E21_quick.json
	$(GO) run ./cmd/cgbench -exp E22 -quick -json BENCH_E22_quick.json
	$(GO) run ./cmd/cgbench -exp E23 -quick -json BENCH_E23_quick.json
	$(GO) run ./cmd/cgbench -exp E24 -quick -json BENCH_E24_quick.json
	$(GO) run ./cmd/cgbench -exp E25 -quick -json BENCH_E25_quick.json
	$(GO) run ./cmd/cgbench -exp E26 -quick -json BENCH_E26_quick.json

# End-to-end service check: start hpfserve on a loopback port, submit a
# job to it over HTTP, assert convergence.
serve-smoke:
	$(GO) run ./cmd/hpfserve -smoke

# End-to-end cluster check: in-process router + two shards, repeat
# traffic through the router, same shard both times, plan-registry hit
# on the second solve, bit-identical answers.
cluster-smoke:
	$(GO) run ./cmd/hpfserve -cluster-smoke

# Small-size smoke run of every experiment.
quick:
	$(GO) run ./cmd/cgbench -quick
