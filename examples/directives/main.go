// The directive language end to end: parse the paper's Figure 2 block
// (plus the §5.1/§5.2 extensions), bind it to concrete sizes, then use
// the bound plan to drive an actual distributed sparse matrix-vector
// product — including the PRIVATE/MERGE(+) loop the ITERATION
// directive describes, executed under its ON PROCESSOR map.
package main

import (
	"fmt"
	"log"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/dist"
	"hpfcg/internal/forall"
	"hpfcg/internal/hpf"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

const directives = `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ DYNAMIC, ALIGN a(:) WITH row(:)
!HPF$ DYNAMIC, DISTRIBUTE row(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(col, row, a)
!EXT$ INDIVISABLE row(ATOM:i) :: col(i:i+1)
!EXT$ REDISTRIBUTE row(ATOM: BLOCK)
!EXT$ ITERATION j ON PROCESSOR(j*np/n), &
!EXT$ PRIVATE(q(n)) WITH MERGE(+), &
!EXT$ NEW(pj, k)
`

func main() {
	const np = 4
	// The system: a banded SPD matrix in CSC format (Scenario 2).
	A := sparse.Banded(24, 2)
	csc := A.ToCSC()
	n := A.NRows
	nz := A.NNZ()

	prog, err := hpf.Parse(directives)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d directives\n\n", len(prog.Directives))

	plan, err := hpf.Bind(prog, np,
		map[string]int{"p": n, "q": n, "r": n, "x": n, "b": n, "col": n + 1, "row": nz, "a": nz},
		map[string]int{"n": n, "nz": nz})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan.Describe())

	// Realise the ATOM redistribution against the real column pointers:
	// whole columns per processor, never split.
	elemDist, err := plan.BindAtomRedistribution("row", csc.ColPtr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATOM:BLOCK element cuts for (row, a): %v\n\n", elemDist.(dist.Irregular).Cuts())

	// Execute the ITERATION directive's loop: the CSC mat-vec
	// q(row(k)) += a(k)*p(j) with a PRIVATE q merged by MERGE(+).
	it := plan.Iterations[0]
	iterMap := plan.IterationMap(it)
	vecDist := plan.Arrays["p"].Dist
	counts := dist.Counts(vecDist)

	xRef := make([]float64, n)
	for i := range xRef {
		xRef[i] = math.Sin(float64(i))
	}
	want := make([]float64, n)
	A.MulVec(xRef, want)

	m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
	var got []float64
	m.Run(func(p *comm.Proc) {
		region := forall.NewPrivate(p, n, forall.MergeSum)
		q := region.Data()
		forall.Indep(p, 0, n, forall.MapFunc(iterMap), 0, func(j int) {
			pj := xRef[j]
			for k := csc.ColPtr[j]; k < csc.ColPtr[j+1]; k++ {
				q[csc.Row[k]] += csc.Val[k] * pj
			}
		})
		blk := region.MergeDistributed(counts)
		full := p.AllgatherV(blk, counts)
		if p.Rank() == 0 {
			got = full
		}
	})

	maxErr := 0.0
	for i := range want {
		if e := math.Abs(got[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("ITERATION-directive mat-vec vs sequential reference: max |err| = %.3e\n", maxErr)
	if maxErr > 1e-12 {
		log.Fatal("directive-driven execution diverged from reference")
	}
	fmt.Println("directive-driven PRIVATE/MERGE(+) execution verified.")
}
