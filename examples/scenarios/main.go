// The paper's §4 narrative as a runnable program: the same CG solve is
// executed under the two partitioning scenarios via the directive
// pipeline (parse -> bind -> hpfexec), with and without the proposed
// §5.1 extension, and the communication matrices are printed so the
// structural difference is visible: Scenario 1's all-to-all broadcast,
// the HPF-1 serialized pipeline's single sub-diagonal, and the
// extension's merge exchange.
package main

import (
	"fmt"
	"log"
	"os"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/hpf"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/report"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

const (
	np = 4
	n  = 512
)

var plans = []struct {
	name string
	src  string
}{
	{"Scenario 1: CSR row-block (Figure 2)", `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
`},
	{"Scenario 2: CSC col-block, HPF-1 (serialized loop)", `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
`},
	{"Scenario 2 + §5.1 extension (PRIVATE WITH MERGE)", `
!HPF$ PROCESSORS :: PROCS(NP)
!HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
!HPF$ DISTRIBUTE p(BLOCK)
!HPF$ SPARSE_MATRIX (CSC) :: smA(colptr, rowidx, a)
!EXT$ ITERATION j ON PROCESSOR(j*np/n), PRIVATE(q(n)) WITH MERGE(+)
`},
}

func main() {
	A := sparse.Banded(n, 4)
	b := sparse.RandomVector(n, 11)
	sizes := map[string]int{
		"p": n, "q": n, "r": n, "x": n, "b": n,
		"row": n + 1, "col": A.NNZ(), "a": A.NNZ(),
		"colptr": n + 1, "rowidx": A.NNZ(),
	}

	fmt.Printf("system: banded n=%d nnz=%d, np=%d, hypercube\n\n", n, A.NNZ(), np)
	for _, pl := range plans {
		plan, err := hpf.Bind(hpf.MustParse(pl.src), np, sizes, map[string]int{"n": n, "nz": A.NNZ()})
		if err != nil {
			log.Fatal(err)
		}
		m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
		res, err := hpfexec.SolveCG(m, plan, A, b, core.Options{Tol: 1e-10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", pl.name)
		fmt.Printf("strategy: %s\n", res.Strategy)
		fmt.Printf("solver:   %s\n", res.Stats)
		fmt.Printf("model:    time=%.5gs comm=%.5gs msgs=%d bytes=%d imbalance=%.2f\n",
			res.Run.ModelTime, res.Run.CommTime(), res.Run.TotalMsgs,
			res.Run.TotalBytes, res.Run.FlopImbalance())
		if err := report.BytesMatrixTable("communication matrix", res.Run.BytesMatrix).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("reading the matrices: for Scenario 1 the executor measured the")
	fmt.Println("banded matrix's halo and picked the ghost exchange (near-diagonal")
	fmt.Println("traffic, ~20x fewer bytes than the broadcast); serialized Scenario 2")
	fmt.Println("shows the rank-to-rank pipeline (sub-diagonal) plus the final")
	fmt.Println("scatter row; the extension turns it into the symmetric merge")
	fmt.Println("exchange with scalable compute.")
}
