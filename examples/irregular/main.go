// Irregular sparse matrices and the §5.2 extensions: a power-law
// ("very irregular grid") matrix is distributed three ways — plain
// element BLOCK (splits rows), uniform ATOM:BLOCK (whole rows, uneven
// work) and CG_BALANCED_PARTITIONER_1 (whole rows, balanced nonzeros)
// — and the effect on load balance and modeled solve time is printed.
package main

import (
	"fmt"
	"log"

	"hpfcg"
	"hpfcg/internal/partition"
	"hpfcg/internal/sparse"
)

func main() {
	const (
		n  = 3000
		np = 8
	)
	// The heavy rows are clustered at the front of the index space —
	// structure "identifiable to a human but not to a compiler"
	// (§5.2.2) that defeats plain BLOCK distribution.
	A := sparse.PowerLawClustered(n, n/8, 42)
	atoms := partition.AtomsFromPtr(A.RowPtr)
	weights := atoms.Weights()

	minW, maxW := weights[0], weights[0]
	for _, w := range weights {
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	fmt.Printf("power-law matrix: n=%d nnz=%d, row density %d..%d\n\n", n, A.NNZ(), minW, maxW)

	// What plain element-level BLOCK would do to the data arrays.
	fmt.Printf("rows split by element-level BLOCK over %d procs: %d (ATOM:BLOCK splits none)\n\n",
		np, partition.SplitCount(atoms, np))

	fmt.Println("row partitioning strategies:")
	fmt.Println("strategy           nnz_imbalance  bottleneck_nnz")
	for _, c := range []struct {
		name string
		cuts []int
	}{
		{"uniform ATOM:BLOCK", partition.UniformAtomBlock(len(weights), np)},
		{"greedy partitioner", partition.GreedyContiguous(weights, np)},
		{"CG_BALANCED_PART_1", partition.BalancedContiguous(weights, np)},
	} {
		fmt.Printf("%-18s %-14.3f %d\n", c.name,
			partition.Imbalance(weights, c.cuts), partition.Bottleneck(weights, c.cuts))
	}

	fmt.Println("\nfull CG solve, BLOCK vs balanced distribution:")
	b := sparse.RandomVector(n, 7)
	for _, balanced := range []bool{false, true} {
		res, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
			NP: np, Tol: 1e-8, Balanced: balanced,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := "BLOCK"
		if balanced {
			name = "balanced"
		}
		fmt.Printf("%-9s iters=%d model_time=%.5gs flop_imbalance=%.3f\n",
			name, res.Stats.Iterations, res.Run.ModelTime, res.Run.FlopImbalance())
	}
}
