// NAS-CG-style benchmark kernel (class S): the shifted power iteration
// with a fixed 25-iteration CG inner solve, run sequentially and on
// simulated machines of increasing size. The paper cites the NAS
// benchmarks (§1 ref [1]) as a home of CG codes; see DESIGN.md for the
// documented matrix-generator substitution.
package main

import (
	"fmt"
	"log"

	"hpfcg/internal/comm"
	"hpfcg/internal/nas"
	"hpfcg/internal/sparse"
	"hpfcg/internal/topology"
)

func main() {
	cls := sparse.NASClassS
	fmt.Printf("NAS-CG-like kernel, class %s: n=%d nonzer=%d shift=%g niter=%d\n\n",
		cls.Name, cls.N, cls.Nonzer, cls.Shift, cls.NIter)

	A := sparse.NASCGMatrix(cls, 1996)
	seqRes := nas.RunWithMatrix(cls, A)
	if err := nas.Verify(seqRes); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sequential zeta trajectory:")
	for i, z := range seqRes.Zetas {
		fmt.Printf("  outer %2d: zeta = %.10f  ||r|| = %.3e\n", i+1, z, seqRes.RNorms[i])
	}
	fmt.Printf("final zeta: %.10f after %d matvecs\n\n", seqRes.FinalZeta(), seqRes.MatVecs)

	fmt.Println("distributed runs (row-block CSR):")
	fmt.Println("np  zeta_final      model_time_s  comm_s    msgs")
	for _, np := range []int{1, 2, 4, 8} {
		m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
		var res nas.Result
		rs := m.Run(func(p *comm.Proc) {
			r := nas.RunDistributed(p, cls, A)
			if p.Rank() == 0 {
				res = r
			}
		})
		if err := nas.Verify(res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %.10f  %-12.5g %-9.4g %d\n",
			np, res.FinalZeta(), rs.ModelTime, rs.CommTime(), rs.TotalMsgs)
	}
	fmt.Println("\n(the distributed zeta must equal the sequential one to rounding)")
}
