// Heat-equation time stepping: the kind of PDE application the paper's
// introduction motivates (computational fluid dynamics, structural
// analysis), run on the simulated distributed machine.
//
// The 2-D heat equation u_t = ∇²u is stepped two ways on the same
// discretisation A (the 5-point Laplacian, h=1):
//
//   - explicit Euler: u += -dt·A·u. One matrix product per step; the
//     product moves only the halo. Stability caps dt at ~1/λmax(A).
//   - implicit Euler: (I + dt·A)·u_new = u. One distributed CG solve per
//     step; unconditionally stable, so dt can be 10x larger here (any larger also works, at accuracy cost).
//
// Both operators come from the selected backend (-backend):
//
//   - mfree (default): matrix-free stencil operators. Nothing is ever
//     assembled — the implicit matrix I + dt·A is just the coefficient
//     pair (1+4dt, -dt), and the halo schedule falls out of the slab
//     geometry with no inspector exchange.
//   - assembled: CSR matrices behind the inspector-executor ghost
//     exchange, the paper's original pipeline.
//
// The two backends are bit-identical per apply, so the physics (and the
// integrator cross-check below) cannot tell them apart; only the setup
// cost differs.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/mfree"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

const (
	nx   = 32
	np   = 8
	tEnd = 2.0
)

func main() {
	backend := flag.String("backend", "mfree",
		"operator backend: mfree (matrix-free stencil) or assembled (CSR + inspector)")
	flag.Parse()
	if *backend != "mfree" && *backend != "assembled" {
		log.Fatalf("unknown -backend %q (mfree, assembled)", *backend)
	}

	n := nx * nx

	// Hot square in the middle of a cold plate.
	u0 := make([]float64, n)
	for i := nx / 3; i < 2*nx/3; i++ {
		for j := nx / 3; j < 2*nx/3; j++ {
			u0[i*nx+j] = 100
		}
	}

	// Explicit stability: dt < 2/λmax; λmax(Laplace2D) < 8.
	dtExp := 0.02
	dtImp := 10 * dtExp // first-order in time: keep dt moderate for comparison

	// -∇² with h=1, Dirichlet boundary — and the implicit-Euler matrix
	// I + dt·A, which matrix-free is nothing but a coefficient pair.
	expSpec := mfree.Spec{Stencil: "5pt", Nx: nx, Ny: nx}
	impSpec := mfree.Spec{Stencil: "5pt", Nx: nx, Ny: nx, Center: 1 + 4*dtImp, Off: -dtImp}

	// makeOp builds a step operator for the chosen backend on one rank.
	// Both run over the identical z-slab layout, so answers agree bitwise.
	makeOp := func(p *comm.Proc, spec mfree.Spec) (spmv.Operator, dist.Dist) {
		if *backend == "mfree" {
			op, err := mfree.New(p, spec)
			if err != nil {
				panic(err)
			}
			return op, op.Dist()
		}
		A, err := spec.Assemble()
		if err != nil {
			panic(err)
		}
		brick, err := spec.Brick(np)
		if err != nil {
			panic(err)
		}
		d := brick.VectorDist()
		return spmv.NewRowBlockCSRGhost(p, A, d), d
	}

	m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())

	var explicitU, implicitU []float64
	var expSteps, impSteps, impIters int

	expStats := m.Run(func(p *comm.Proc) {
		op, d := makeOp(p, expSpec)
		u := darray.New(p, d)
		w := darray.New(p, d)
		u.SetGlobal(func(g int) float64 { return u0[g] })
		steps := int(tEnd / dtExp)
		for s := 0; s < steps; s++ {
			op.Apply(u, w)    // w = A u  (ghost halo exchange only)
			u.AXPY(-dtExp, w) // u = u - dt·A·u
		}
		full := u.Gather()
		if p.Rank() == 0 {
			explicitU = full
			expSteps = steps
		}
	})

	impStats := m.Run(func(p *comm.Proc) {
		op, d := makeOp(p, impSpec)
		u := darray.New(p, d)
		rhs := darray.New(p, d)
		u.SetGlobal(func(g int) float64 { return u0[g] })
		steps := int(tEnd / dtImp)
		iters := 0
		for s := 0; s < steps; s++ {
			rhs.CopyFrom(u)
			st, err := core.CG(p, op, rhs, u, core.Options{Tol: 1e-10})
			if err != nil {
				panic(err)
			}
			iters += st.Iterations
		}
		full := u.Gather()
		if p.Rank() == 0 {
			implicitU = full
			impSteps = steps
			impIters = iters
		}
	})

	// Both integrators approximate the same PDE; at tEnd=2 with these
	// steps they must agree to discretisation accuracy.
	maxDiff, maxVal := 0.0, 0.0
	for i := range explicitU {
		if dd := math.Abs(explicitU[i] - implicitU[i]); dd > maxDiff {
			maxDiff = dd
		}
		if v := math.Abs(explicitU[i]); v > maxVal {
			maxVal = v
		}
	}

	fmt.Printf("heat equation on a %dx%d plate, np=%d, t=%g, backend=%s\n\n", nx, nx, np, tEnd, *backend)
	fmt.Printf("explicit Euler: %4d steps (dt=%.2g)  model_time=%.5gs  msgs=%d  bytes=%d\n",
		expSteps, dtExp, expStats.ModelTime, expStats.TotalMsgs, expStats.TotalBytes)
	fmt.Printf("implicit Euler: %4d steps (dt=%.2g)  model_time=%.5gs  msgs=%d  bytes=%d  (CG iters total: %d)\n",
		impSteps, dtImp, impStats.ModelTime, impStats.TotalMsgs, impStats.TotalBytes, impIters)
	fmt.Printf("\nmax |explicit - implicit| = %.3g (peak temperature %.3g)\n", maxDiff, maxVal)
	if maxDiff > 0.05*maxVal {
		log.Fatal("integrators diverged beyond discretisation accuracy")
	}
	center := explicitU[(nx/2)*nx+nx/2]
	fmt.Printf("temperature at plate centre after t=%g: %.4f (started at 100)\n", tEnd, center)
	fmt.Println("\nintegrators agree; the implicit path trades CG communication for 10x fewer steps.")
}
