// Poisson solve with method and preconditioner comparison — the
// computational-fluid-dynamics style workload of the paper's
// introduction. The example solves -∇²u = f on a square grid with a
// known manufactured solution, first comparing the distributed solver
// family across processor counts, then the sequential preconditioners
// (§2: "a preconditioner ... will increase the speed of convergence").
package main

import (
	"fmt"
	"log"
	"math"

	"hpfcg"
	"hpfcg/internal/seq"
	"hpfcg/internal/sparse"
)

func main() {
	const nx = 48
	A := sparse.Laplace2D(nx, nx)
	n := A.NRows

	// Manufactured solution u*(i,j) = x(1-x)·y(1-y)·e^x with
	// x=(i+1)/(nx+1), y=(j+1)/(nx+1); b = A·u* so the discrete solution
	// is exactly u*. (Not an eigenvector of the discrete Laplacian, so
	// CG needs a full Krylov build-up rather than one lucky step.)
	want := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < nx; j++ {
			x := float64(i+1) / float64(nx+1)
			y := float64(j+1) / float64(nx+1)
			want[i*nx+j] = x * (1 - x) * y * (1 - y) * math.Exp(x)
		}
	}
	b := make([]float64, n)
	A.MulVec(want, b)

	fmt.Printf("Poisson problem: %dx%d grid, n=%d, nnz=%d\n\n", nx, nx, n, A.NNZ())

	fmt.Println("distributed solvers (row-block CSR, hypercube):")
	fmt.Println("method    np  iters  model_time_s  max_err")
	for _, method := range []hpfcg.Method{hpfcg.MethodCG, hpfcg.MethodPCG, hpfcg.MethodBiCGSTAB} {
		for _, np := range []int{1, 4, 8} {
			res, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
				Method: method, NP: np, Tol: 1e-10,
			})
			if err != nil {
				log.Fatal(err)
			}
			maxErr := 0.0
			for g := range want {
				if e := math.Abs(res.X[g] - want[g]); e > maxErr {
					maxErr = e
				}
			}
			fmt.Printf("%-9s %-3d %-6d %-13.5g %.2e\n",
				method, np, res.Stats.Iterations, res.Run.ModelTime, maxErr)
		}
	}

	fmt.Println("\nsequential preconditioner comparison:")
	fmt.Println("precond  iters  relres")
	for _, pname := range []string{"none", "jacobi", "ssor", "ic0"} {
		M, err := seq.ByName(pname, A)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, n)
		st, err := seq.PCG(A, M, b, x, seq.Options{Tol: 1e-10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-6d %.3e\n", pname, st.Iterations, st.Residual)
	}
}
