// Poisson solve with method and preconditioner comparison — the
// computational-fluid-dynamics style workload of the paper's
// introduction. The example solves -∇²u = f on a square grid with a
// known manufactured solution. The operator comes from the selected
// backend (-backend): matrix-free by default, where the right-hand
// side is formed by the stencil's own MulVec and the distributed
// solves run through hpfexec.PrepareStencil with nothing ever
// assembled; or assembled, the original pipeline, where the CSR is
// materialized (from the very same spec) and run through the hpfcg
// facade. The sequential preconditioner comparison (§2: "a
// preconditioner ... will increase the speed of convergence") always
// assembles — incomplete factorizations need the explicit matrix,
// which is exactly the kind of workload the assembled path remains
// for.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"hpfcg"
	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/hpfexec"
	"hpfcg/internal/mfree"
	"hpfcg/internal/seq"
	"hpfcg/internal/topology"
)

func main() {
	backend := flag.String("backend", "mfree",
		"operator backend: mfree (matrix-free stencil) or assembled (CSR + inspector)")
	flag.Parse()
	if *backend != "mfree" && *backend != "assembled" {
		log.Fatalf("unknown -backend %q (mfree, assembled)", *backend)
	}

	const nx = 48
	spec := mfree.Spec{Stencil: "5pt", Nx: nx, Ny: nx}
	n := spec.N()

	// Manufactured solution u*(i,j) = x(1-x)·y(1-y)·e^x with
	// x=(i+1)/(nx+1), y=(j+1)/(nx+1); b = A·u* so the discrete solution
	// is exactly u*. (Not an eigenvector of the discrete Laplacian, so
	// CG needs a full Krylov build-up rather than one lucky step.)
	want := make([]float64, n)
	for i := 0; i < nx; i++ {
		for j := 0; j < nx; j++ {
			x := float64(i+1) / float64(nx+1)
			y := float64(j+1) / float64(nx+1)
			want[i*nx+j] = x * (1 - x) * y * (1 - y) * math.Exp(x)
		}
	}
	b := make([]float64, n)
	spec.MulVec(want, b) // matrix-free b = A·u*: bitwise equal to the CSR product

	fmt.Printf("Poisson problem: %dx%d grid, n=%d, nnz=%d, backend=%s\n\n",
		nx, nx, n, spec.NNZ(), *backend)

	maxErrOf := func(x []float64) float64 {
		maxErr := 0.0
		for g := range want {
			if e := math.Abs(x[g] - want[g]); e > maxErr {
				maxErr = e
			}
		}
		return maxErr
	}

	if *backend == "mfree" {
		fmt.Println("distributed matrix-free CG (z-slab stencil, hypercube):")
		fmt.Println("method    np  iters  model_time_s  max_err")
		for _, np := range []int{1, 4, 8} {
			m := comm.NewMachine(np, topology.Hypercube{}, topology.DefaultCostParams())
			pr, err := hpfexec.PrepareStencil(m, spec)
			if err != nil {
				log.Fatal(err)
			}
			out, err := pr.SolveStencilBatch([][]float64{b}, []core.Options{{Tol: 1e-10}})
			if err != nil {
				log.Fatal(err)
			}
			res := out.Results[0]
			fmt.Printf("%-9s %-3d %-6d %-13.5g %.2e\n",
				"mfree-cg", np, res.Stats.Iterations, out.Run.ModelTime, maxErrOf(res.X))
		}
	} else {
		A, err := spec.Assemble()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("distributed solvers (row-block CSR, hypercube):")
		fmt.Println("method    np  iters  model_time_s  max_err")
		for _, method := range []hpfcg.Method{hpfcg.MethodCG, hpfcg.MethodPCG, hpfcg.MethodBiCGSTAB} {
			for _, np := range []int{1, 4, 8} {
				res, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
					Method: method, NP: np, Tol: 1e-10,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-9s %-3d %-6d %-13.5g %.2e\n",
					method, np, res.Stats.Iterations, res.Run.ModelTime, maxErrOf(res.X))
			}
		}
	}

	fmt.Println("\nsequential preconditioner comparison (assembled: ic0 needs the explicit matrix):")
	fmt.Println("precond  iters  relres")
	A, err := spec.Assemble()
	if err != nil {
		log.Fatal(err)
	}
	for _, pname := range []string{"none", "jacobi", "ssor", "ic0"} {
		M, err := seq.ByName(pname, A)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, n)
		st, err := seq.PCG(A, M, b, x, seq.Options{Tol: 1e-10})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-6d %.3e\n", pname, st.Iterations, st.Residual)
	}
}
