// Quickstart: build a sparse SPD system, solve it with the distributed
// conjugate gradient solver on a simulated 8-processor machine, and
// print what the run cost. This is the smallest end-to-end use of the
// public API.
package main

import (
	"fmt"
	"log"

	"hpfcg"
	"hpfcg/internal/sparse"
)

func main() {
	// A 2-D Poisson problem on a 64x64 grid: the classic sparse SPD
	// system the paper's introduction motivates (CFD, structural
	// analysis, ...).
	A := sparse.Laplace2D(64, 64)
	b := sparse.Ones(A.NRows)

	res, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
		Method: hpfcg.MethodCG,
		Layout: hpfcg.LayoutRowCSR, // the paper's Scenario 1 (Figure 2)
		NP:     8,
		Tol:    1e-10,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("system:   n=%d, nnz=%d\n", A.NRows, A.NNZ())
	fmt.Printf("solver:   %s\n", res.Stats)
	fmt.Printf("machine:  modeled time %.4g s, comm %.4g s, %d messages, %d bytes\n",
		res.Run.ModelTime, res.Run.CommTime(), res.Run.TotalMsgs, res.Run.TotalBytes)
	fmt.Printf("balance:  flop imbalance %.3f (1.0 = perfect)\n", res.Run.FlopImbalance())
	fmt.Printf("solution: x[0]=%.6f x[mid]=%.6f x[last]=%.6f\n",
		res.X[0], res.X[len(res.X)/2], res.X[len(res.X)-1])

	if !res.Stats.Converged {
		log.Fatal("did not converge")
	}
}
