package hpfcg_test

import (
	"fmt"

	"hpfcg"
	"hpfcg/internal/sparse"
)

// Solve a small Poisson system on a simulated 4-processor hypercube
// with the paper's Scenario 1 layout.
func ExampleSolve() {
	A := sparse.Laplace2D(16, 16)
	b := sparse.Ones(A.NRows)
	res, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
		Method: hpfcg.MethodCG,
		Layout: hpfcg.LayoutRowCSR,
		NP:     4,
		Tol:    1e-10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v n=%d np-invariant-iterations=%d\n",
		res.Stats.Converged, A.NRows, res.Stats.Iterations)
	// Output: converged=true n=256 np-invariant-iterations=31
}

// The Scenario 2 layouts: the same system solved with the HPF-1
// serialized execution and with the proposed PRIVATE/MERGE(+)
// extension — identical numerics, different cost.
func ExampleSolve_scenario2() {
	A := sparse.Banded(128, 3)
	b := sparse.RandomVector(128, 1)
	serial, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
		Layout: hpfcg.LayoutColCSCSerial, NP: 4, Tol: 1e-10,
	})
	if err != nil {
		panic(err)
	}
	merged, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{
		Layout: hpfcg.LayoutColCSCMerge, NP: 4, Tol: 1e-10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("same iterations: %v\n", serial.Stats.Iterations == merged.Stats.Iterations)
	fmt.Printf("extension faster: %v\n", merged.Run.ModelTime < serial.Run.ModelTime)
	// Output:
	// same iterations: true
	// extension faster: true
}

// Balanced (whole-row, nonzero-weighted) distribution for an irregular
// matrix — the paper's CG_BALANCED_PARTITIONER_1.
func ExampleSolve_balanced() {
	A := sparse.PowerLawClustered(500, 120, 9)
	b := sparse.RandomVector(500, 2)
	plain, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{NP: 4, Tol: 1e-8})
	if err != nil {
		panic(err)
	}
	bal, err := hpfcg.Solve(A, b, hpfcg.SolveSpec{NP: 4, Tol: 1e-8, Balanced: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("imbalance improves: %v\n", bal.Run.FlopImbalance() < plain.Run.FlopImbalance())
	// Output: imbalance improves: true
}
