package hpfcg

import (
	"math"
	"testing"

	"hpfcg/internal/sparse"
)

func residual(A *CSR, x, b []float64) float64 {
	r := make([]float64, A.NRows)
	A.MulVec(x, r)
	rn, bn := 0.0, 0.0
	for i := range r {
		rn += (r[i] - b[i]) * (r[i] - b[i])
		bn += b[i] * b[i]
	}
	return math.Sqrt(rn / bn)
}

func TestSolveAllMethodsAndLayouts(t *testing.T) {
	A := sparse.Laplace2D(6, 6)
	b := sparse.RandomVector(A.NRows, 4)
	methods := []Method{MethodCG, MethodPCG, MethodBiCG, MethodCGS, MethodBiCGSTAB}
	layouts := []Layout{LayoutRowCSR, LayoutRowCSRHalo, LayoutColCSCMerge, LayoutColCSCSerial, LayoutDenseRow, LayoutDenseCol}
	for _, method := range methods {
		for _, layout := range layouts {
			if method == MethodBiCG && (layout == LayoutDenseCol || layout == LayoutRowCSRHalo) {
				continue // no transpose support, tested separately
			}
			res, err := Solve(A, b, SolveSpec{Method: method, Layout: layout, NP: 4, Tol: 1e-9})
			if err != nil {
				t.Fatalf("%s/%s: %v", method, layout, err)
			}
			if !res.Stats.Converged {
				t.Fatalf("%s/%s: not converged: %v", method, layout, res.Stats)
			}
			if rr := residual(A, res.X, b); rr > 1e-7 {
				t.Errorf("%s/%s: residual %g", method, layout, rr)
			}
			if res.Run.ModelTime <= 0 {
				t.Errorf("%s/%s: no modeled time", method, layout)
			}
		}
	}
}

func TestSolveDefaults(t *testing.T) {
	A := sparse.Laplace1D(20)
	b := sparse.Ones(20)
	res, err := Solve(A, b, SolveSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("defaults: %v", res.Stats)
	}
}

func TestSolveBalanced(t *testing.T) {
	A := sparse.PowerLawClustered(300, 60, 3)
	b := sparse.RandomVector(300, 1)
	plain, err := Solve(A, b, SolveSpec{NP: 4, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Solve(A, b, SolveSpec{NP: 4, Tol: 1e-8, Balanced: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr := residual(A, bal.X, b); rr > 1e-6 {
		t.Errorf("balanced residual %g", rr)
	}
	if bal.Run.FlopImbalance() > plain.Run.FlopImbalance()+1e-9 {
		t.Errorf("balanced imbalance %g worse than plain %g",
			bal.Run.FlopImbalance(), plain.Run.FlopImbalance())
	}
}

func TestSolveErrors(t *testing.T) {
	A := sparse.Laplace1D(8)
	b := sparse.Ones(8)
	cases := []SolveSpec{
		{Layout: "triangular"},
		{Method: "sor"},
		{Method: MethodBiCG, Layout: LayoutDenseCol},
		{Balanced: true, Layout: LayoutColCSCMerge},
		{NP: -2},
		{Topology: "moebius"},
	}
	for i, spec := range cases {
		if spec.NP == 0 {
			spec.NP = 2
		}
		if _, err := Solve(A, b, spec); err == nil {
			t.Errorf("case %d (%+v): expected error", i, spec)
		}
	}
	rect := sparse.NewCOO(2, 3)
	rect.Add(0, 0, 1)
	if _, err := Solve(rect.ToCSR(), b[:2], SolveSpec{NP: 1}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	if _, err := Solve(A, b[:3], SolveSpec{NP: 1}); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestNewMachine(t *testing.T) {
	for _, topo := range []string{"", "hypercube", "ring", "mesh2d", "full"} {
		m, err := NewMachine(Config{NP: 3, Topology: topo})
		if err != nil {
			t.Fatalf("%q: %v", topo, err)
		}
		if m.NP() != 3 {
			t.Errorf("%q: NP %d", topo, m.NP())
		}
	}
	if _, err := NewMachine(Config{NP: 0}); err == nil {
		t.Error("NP=0 accepted")
	}
	if _, err := NewMachine(Config{NP: 2, Topology: "klein-bottle"}); err == nil {
		t.Error("bad topology accepted")
	}
}

func TestSolveMatchesAcrossLayouts(t *testing.T) {
	A := sparse.RandomSPD(40, 5, 8)
	b := sparse.RandomVector(40, 2)
	var base []float64
	for i, layout := range []Layout{LayoutRowCSR, LayoutColCSCMerge, LayoutColCSCSerial} {
		res, err := Solve(A, b, SolveSpec{Layout: layout, NP: 3, Tol: 1e-11})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			base = res.X
			continue
		}
		for g := range base {
			if math.Abs(res.X[g]-base[g]) > 1e-8 {
				t.Fatalf("%s: solution differs at %d", layout, g)
			}
		}
	}
}

func TestSolveGMRES(t *testing.T) {
	// Nonsymmetric: GMRES through the facade.
	n := 30
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1.5)
			coo.Add(i+1, i, -0.5)
		}
	}
	A := coo.ToCSR()
	b := sparse.RandomVector(n, 8)
	res, err := Solve(A, b, SolveSpec{Method: MethodGMRES, NP: 3, Tol: 1e-9, Restart: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatalf("GMRES: %v", res.Stats)
	}
	if rr := residual(A, res.X, b); rr > 1e-7 {
		t.Errorf("residual %g", rr)
	}
}

func TestSolvePreconditioners(t *testing.T) {
	// Large enough that block-IC0's intra-block coupling beats diagonal
	// scaling (on small well-conditioned grids the IC0 drop error can
	// outweigh the gain).
	A := sparse.Laplace2D(24, 24)
	b := sparse.Ones(A.NRows)
	iters := map[string]int{}
	for _, pname := range []string{"jacobi", "block-ic0", "block-ssor"} {
		res, err := Solve(A, b, SolveSpec{Method: MethodPCG, Precond: pname, NP: 4, Tol: 1e-9})
		if err != nil {
			t.Fatalf("%s: %v", pname, err)
		}
		if !res.Stats.Converged {
			t.Fatalf("%s: %v", pname, res.Stats)
		}
		iters[pname] = res.Stats.Iterations
	}
	if iters["block-ic0"] >= iters["jacobi"] {
		t.Errorf("block-ic0 %d >= jacobi %d", iters["block-ic0"], iters["jacobi"])
	}
	if _, err := Solve(A, b, SolveSpec{Method: MethodPCG, Precond: "magic", NP: 2}); err == nil {
		t.Error("unknown preconditioner accepted")
	}
}

func TestSolveHistory(t *testing.T) {
	A := sparse.Laplace1D(25)
	b := sparse.Ones(25)
	res, err := Solve(A, b, SolveSpec{NP: 2, History: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.History) != res.Stats.Iterations {
		t.Errorf("history %d != iterations %d", len(res.Stats.History), res.Stats.Iterations)
	}
}

// Integration matrix: every layout must solve correctly on every
// topology and several processor counts (the portability claim).
func TestSolveLayoutTopologyMatrix(t *testing.T) {
	A := sparse.Laplace2D(5, 5)
	b := sparse.RandomVector(A.NRows, 6)
	layouts := []Layout{LayoutRowCSR, LayoutRowCSRHalo, LayoutColCSCMerge, LayoutColCSCSerial}
	topos := []string{"hypercube", "ring", "mesh2d", "full"}
	for _, layout := range layouts {
		for _, topo := range topos {
			for _, np := range []int{1, 3, 4} {
				res, err := Solve(A, b, SolveSpec{
					Layout: layout, Topology: topo, NP: np, Tol: 1e-9,
				})
				if err != nil {
					t.Fatalf("%s/%s/np=%d: %v", layout, topo, np, err)
				}
				if !res.Stats.Converged {
					t.Fatalf("%s/%s/np=%d: not converged", layout, topo, np)
				}
				if rr := residual(A, res.X, b); rr > 1e-7 {
					t.Errorf("%s/%s/np=%d: residual %g", layout, topo, np, rr)
				}
			}
		}
	}
}
