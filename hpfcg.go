// Package hpfcg is a Go reproduction of "High Performance Fortran and
// Possible Extensions to support Conjugate Gradient Algorithms"
// (Dincer, Hawick, Choudhary, Fox — NPAC SCCS-703 / HPDC 1996).
//
// It provides, as a library:
//
//   - an SPMD message-passing machine with a Kumar-style analytic cost
//     model standing in for the paper's HPF compiler + MPP
//     (internal/comm, internal/topology);
//   - HPF's data mapping model — BLOCK/CYCLIC distributions, alignment,
//     plus the paper's proposed atom-based irregular distributions and
//     load-balancing partitioners (internal/dist, internal/partition);
//   - distributed vectors with the SAXPY / DOT_PRODUCT intrinsics
//     (internal/darray) and the two sparse matrix-vector partitionings
//     of §4 (internal/spmv);
//   - the paper's proposed language extensions as runtime constructs —
//     PRIVATE/MERGE(+), ON PROCESSOR iteration maps (internal/forall) —
//     and as parsable directives (internal/hpf);
//   - the solver family: CG, preconditioned CG, BiCG, CGS, BiCGSTAB,
//     distributed (internal/core) and sequential with GMRES and
//     Jacobi/SSOR/IC(0) preconditioners (internal/seq), plus dense
//     direct baselines (internal/direct);
//   - the NAS-CG-like benchmark kernel (internal/nas) and the
//     experiment harness that regenerates every figure-level claim
//     (internal/bench, see EXPERIMENTS.md).
//
// This file is the high-level facade: build a simulated machine, pick
// a method and a data layout, and solve.
package hpfcg

import (
	"fmt"

	"hpfcg/internal/comm"
	"hpfcg/internal/core"
	"hpfcg/internal/darray"
	"hpfcg/internal/dist"
	"hpfcg/internal/partition"
	"hpfcg/internal/sparse"
	"hpfcg/internal/spmv"
	"hpfcg/internal/topology"
)

// Re-exported types so facade users need only this package for common
// work; the internal packages remain available for advanced use.
type (
	// Machine is the simulated NP-processor parallel computer.
	Machine = comm.Machine
	// Proc is one virtual processor inside a Machine.Run.
	Proc = comm.Proc
	// RunStats aggregates a run's modeled time and communication.
	RunStats = comm.RunStats
	// Vector is a distributed vector.
	Vector = darray.Vector
	// CSR is a compressed-sparse-row matrix.
	CSR = sparse.CSR
	// CSC is a compressed-sparse-column matrix.
	CSC = sparse.CSC
	// SolveStats reports a distributed solve's outcome.
	SolveStats = core.Stats
	// CostParams are the machine's communication/compute constants.
	CostParams = topology.CostParams
)

// Config describes the simulated machine.
type Config struct {
	// NP is the processor count (>= 1).
	NP int
	// Topology is "hypercube" (default), "ring", "mesh2d" or "full".
	Topology string
	// Cost holds machine constants; the zero value selects
	// topology.DefaultCostParams.
	Cost CostParams
}

// NewMachine builds the simulated machine for cfg.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.NP < 1 {
		return nil, fmt.Errorf("hpfcg: NP must be >= 1, got %d", cfg.NP)
	}
	name := cfg.Topology
	if name == "" {
		name = "hypercube"
	}
	topo, err := topology.ByName(name)
	if err != nil {
		return nil, err
	}
	cost := cfg.Cost
	if cost == (CostParams{}) {
		cost = topology.DefaultCostParams()
	}
	return comm.NewMachine(cfg.NP, topo, cost), nil
}

// Method selects the iterative solver.
type Method string

// Supported methods (§2 and §2.1 of the paper).
const (
	MethodCG       Method = "cg"
	MethodPCG      Method = "pcg"  // CG with a distributed preconditioner (see SolveSpec.Precond)
	MethodBiCG     Method = "bicg" // needs a transpose-capable layout
	MethodCGS      Method = "cgs"
	MethodBiCGSTAB Method = "bicgstab"
	MethodGMRES    Method = "gmres" // restarted; see SolveSpec.Restart
)

// Layout selects the matrix storage and partitioning (§3-§4).
type Layout string

// Supported layouts. RowCSR is the paper's Scenario 1; RowCSRHalo is
// Scenario 1 with the inspector-executor ghost exchange instead of the
// broadcast (cheap for matrices with locality); the ColCSC layouts are
// Scenario 2 in its two executions (HPF-1 serialized vs the proposed
// PRIVATE/MERGE extension); the dense layouts are the Figure 3/4 dense
// variants.
const (
	LayoutRowCSR       Layout = "row-csr"
	LayoutRowCSRHalo   Layout = "row-csr-halo"
	LayoutColCSCMerge  Layout = "col-csc-merge"
	LayoutColCSCSerial Layout = "col-csc-serial"
	LayoutDenseRow     Layout = "dense-row"
	LayoutDenseCol     Layout = "dense-col"
)

// SolveSpec configures a distributed solve.
type SolveSpec struct {
	Method Method // default MethodCG
	Layout Layout // default LayoutRowCSR
	// Balanced distributes rows with CG_BALANCED_PARTITIONER_1 (whole
	// rows, nonzeros balanced — §5.2.2) instead of plain BLOCK. Only
	// valid with the row-CSR layouts.
	Balanced bool
	// Precond selects the preconditioner for MethodPCG: "jacobi"
	// (default), "block-ic0" or "block-ssor" (block-Jacobi with a local
	// IC(0)/SSOR solve per processor block).
	Precond string
	// Restart is the GMRES restart length (0 -> 30).
	Restart int
	// Tol is the relative-residual tolerance (0 -> 1e-10).
	Tol float64
	// MaxIter caps iterations (0 -> 2n).
	MaxIter int
	// History records the per-iteration relative residual in
	// Result.Stats.History.
	History bool
	// Machine configuration.
	NP       int
	Topology string
	Cost     CostParams
}

// Result is a completed distributed solve.
type Result struct {
	// X is the gathered solution vector.
	X []float64
	// Stats reports convergence and operation counts.
	Stats SolveStats
	// Run reports modeled time, communication and load balance.
	Run RunStats
}

// Solve runs A·x = b on a simulated machine per spec and returns the
// solution with solver and machine statistics.
func Solve(A *CSR, b []float64, spec SolveSpec) (*Result, error) {
	if A.NRows != A.NCols {
		return nil, fmt.Errorf("hpfcg: matrix must be square, got %dx%d", A.NRows, A.NCols)
	}
	n := A.NRows
	if len(b) != n {
		return nil, fmt.Errorf("hpfcg: rhs length %d != %d", len(b), n)
	}
	if spec.Method == "" {
		spec.Method = MethodCG
	}
	if spec.Layout == "" {
		spec.Layout = LayoutRowCSR
	}
	if spec.NP == 0 {
		spec.NP = 1
	}
	m, err := NewMachine(Config{NP: spec.NP, Topology: spec.Topology, Cost: spec.Cost})
	if err != nil {
		return nil, err
	}

	var d dist.Contiguous = dist.NewBlock(n, spec.NP)
	if spec.Balanced {
		if spec.Layout != LayoutRowCSR && spec.Layout != LayoutRowCSRHalo {
			return nil, fmt.Errorf("hpfcg: Balanced requires a row-CSR layout, got %s", spec.Layout)
		}
		atoms := partition.AtomsFromPtr(A.RowPtr)
		// Balance the whole CG iteration: one unit per stored entry plus
		// ~6 vector multiply-adds per owned row (SAXPYs + dots).
		weights := partition.CGWeights(atoms.Weights(), 6)
		cuts := partition.BalancedContiguous(weights, spec.NP)
		d = dist.NewIrregular(cuts)
	}

	// Pre-build shared global structures outside the SPMD region.
	var csc *sparse.CSC
	var dense *sparse.Dense
	switch spec.Layout {
	case LayoutRowCSR, LayoutRowCSRHalo:
	case LayoutColCSCMerge, LayoutColCSCSerial:
		csc = A.ToCSC()
	case LayoutDenseRow, LayoutDenseCol:
		dense = A.ToDense()
	default:
		return nil, fmt.Errorf("hpfcg: unknown layout %q", spec.Layout)
	}

	res := &Result{}
	var solveErr error
	run := m.Run(func(p *Proc) {
		var op spmv.Operator
		switch spec.Layout {
		case LayoutRowCSR:
			op = spmv.NewRowBlockCSR(p, A, d)
		case LayoutRowCSRHalo:
			op = spmv.NewRowBlockCSRGhost(p, A, d)
		case LayoutColCSCMerge:
			op = spmv.NewColBlockCSC(p, csc, d, spmv.ModePrivateMerge)
		case LayoutColCSCSerial:
			op = spmv.NewColBlockCSC(p, csc, d, spmv.ModeSerialized)
		case LayoutDenseRow:
			op = spmv.NewDenseRowBlock(p, dense, d)
		case LayoutDenseCol:
			op = spmv.NewDenseColBlock(p, dense, d, spmv.ModePrivateMerge)
		}
		bv := darray.New(p, d)
		xv := darray.New(p, d)
		bv.SetGlobal(func(g int) float64 { return b[g] })
		opt := core.Options{Tol: spec.Tol, MaxIter: spec.MaxIter, History: spec.History}

		var st core.Stats
		var err error
		switch spec.Method {
		case MethodCG:
			st, err = core.CG(p, op, bv, xv, opt)
		case MethodPCG:
			var M core.Preconditioner
			switch spec.Precond {
			case "", "jacobi":
				M, err = core.NewJacobi(p, A, d)
			case "block-ic0":
				M, err = core.NewBlockJacobi(p, A, d, "ic0")
			case "block-ssor":
				M, err = core.NewBlockJacobi(p, A, d, "ssor")
			default:
				err = fmt.Errorf("hpfcg: unknown preconditioner %q", spec.Precond)
			}
			if err == nil {
				st, err = core.PCG(p, op, M, bv, xv, opt)
			}
		case MethodBiCG:
			top, ok := op.(spmv.TransposeOperator)
			if !ok {
				err = fmt.Errorf("hpfcg: layout %s cannot apply A^T (required by BiCG)", spec.Layout)
			} else {
				st, err = core.BiCG(p, top, bv, xv, opt)
			}
		case MethodCGS:
			st, err = core.CGS(p, op, bv, xv, opt)
		case MethodBiCGSTAB:
			st, err = core.BiCGSTAB(p, op, bv, xv, opt)
		case MethodGMRES:
			restart := spec.Restart
			if restart == 0 {
				restart = 30
			}
			if opt.MaxIter == 0 {
				opt.MaxIter = 20 * n // restarted GMRES converges slowly
			}
			st, err = core.GMRES(p, op, bv, xv, restart, opt)
		default:
			err = fmt.Errorf("hpfcg: unknown method %q", spec.Method)
		}
		if err != nil {
			if p.Rank() == 0 {
				solveErr = err
			}
			return
		}
		full := xv.Gather()
		if p.Rank() == 0 {
			res.X = full
			res.Stats = st
		}
	})
	if solveErr != nil {
		return nil, solveErr
	}
	res.Run = run
	return res, nil
}
